"""Shortest-path trees (Problem 2).

Lemma 3 of the paper: the optimal storage graph for Problem 2 (minimize the
recreation cost of every version simultaneously) is the shortest-path tree
of the augmented graph rooted at the dummy vertex ``V0``, using the Φ
weights.  Because every version has a direct edge from ``V0`` (materialize
it), the SPT always exists; in practice it materializes a version unless a
chain of deltas is genuinely faster to replay than reading the full version,
which only happens when Φ is not proportional to Δ.

Dijkstra's algorithm is implemented from scratch on top of the addressable
priority queue so it can also be reused by LMG and LAST (both need the SPT
as an ingredient).
"""

from __future__ import annotations

import math
from typing import Hashable, Mapping

from ..core.instance import ROOT, ProblemInstance
from ..core.storage_plan import StoragePlan
from ..exceptions import SolverError
from .priority_queue import AddressablePriorityQueue

__all__ = [
    "dijkstra",
    "shortest_path_tree",
    "shortest_path_plan",
    "shortest_path_distances",
]

Node = Hashable
Adjacency = Mapping[Node, Mapping[Node, float]]


def dijkstra(
    adjacency: Adjacency, source: Node
) -> tuple[dict[Node, float], dict[Node, Node]]:
    """Single-source shortest paths on a non-negatively weighted digraph.

    Returns ``(distances, parents)``; unreachable nodes are absent from both
    mappings.  ``adjacency[u][v]`` is the weight of the directed edge
    ``u -> v``.
    """
    distances: dict[Node, float] = {source: 0.0}
    parents: dict[Node, Node] = {}
    settled: set[Node] = set()
    queue: AddressablePriorityQueue[Node] = AddressablePriorityQueue()
    queue.push(source, 0.0)
    while queue:
        node, dist = queue.pop()
        if node in settled:
            continue
        settled.add(node)
        for neighbor, weight in adjacency.get(node, {}).items():
            if weight < 0:
                raise SolverError("Dijkstra requires non-negative edge weights")
            candidate = float(dist) + float(weight)
            if candidate < distances.get(neighbor, math.inf):
                distances[neighbor] = candidate
                parents[neighbor] = node
                queue.push(neighbor, candidate)
    return distances, parents


def _recreation_adjacency(instance: ProblemInstance) -> dict[Node, dict[Node, float]]:
    """Adjacency of the augmented graph weighted by recreation costs (Φ)."""
    adjacency: dict[Node, dict[Node, float]] = {ROOT: {}}
    for vid in instance.version_ids:
        adjacency[ROOT][vid] = instance.materialization_recreation(vid)
        adjacency.setdefault(vid, {})
    for (source, target), recreation in instance.cost_model.phi.off_diagonal_items():
        if source not in instance or target not in instance:
            continue
        if not instance.cost_model.has_delta(source, target):
            continue
        row = adjacency.setdefault(source, {})
        if target not in row or recreation < row[target]:
            row[target] = recreation
    return adjacency


def shortest_path_distances(instance: ProblemInstance) -> dict[Node, float]:
    """Minimum possible recreation cost of every version (ignores storage)."""
    adjacency = _recreation_adjacency(instance)
    distances, _ = dijkstra(adjacency, ROOT)
    distances.pop(ROOT, None)
    return distances


def shortest_path_tree(instance: ProblemInstance) -> dict[Node, Node]:
    """Parent map of the shortest-path tree rooted at the dummy vertex."""
    adjacency = _recreation_adjacency(instance)
    distances, parents = dijkstra(adjacency, ROOT)
    missing = [vid for vid in instance.version_ids if vid not in distances]
    if missing:
        raise SolverError(
            f"versions unreachable in the recreation graph: {missing[:5]!r}"
        )
    return parents


def shortest_path_plan(instance: ProblemInstance) -> StoragePlan:
    """Solve Problem 2: minimize every version's recreation cost.

    The returned plan is the Φ-weighted shortest-path tree; each version's
    recreation cost equals its true lower bound, at the price of a total
    storage cost that is usually close to materializing everything.
    """
    parents = shortest_path_tree(instance)
    plan = StoragePlan()
    for child, parent in parents.items():
        plan.assign(child, parent)
    return plan
