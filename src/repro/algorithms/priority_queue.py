"""An addressable binary-heap priority queue with decrease-key.

Prim's algorithm, Dijkstra's algorithm and the paper's Modified Prim variant
all need a priority queue that supports updating the priority of an element
already in the queue.  The standard library ``heapq`` does not, so this
module implements a small indexed binary heap from scratch (part of the
"build the substrate" requirement).

Keys may be arbitrary comparable values; ties are broken by insertion order
so the queues behave deterministically, which keeps all experiments
reproducible.
"""

from __future__ import annotations

from typing import Generic, Hashable, Iterator, TypeVar

__all__ = ["AddressablePriorityQueue"]

T = TypeVar("T", bound=Hashable)


class AddressablePriorityQueue(Generic[T]):
    """Min-heap keyed by a comparable priority, addressable by item.

    Operations
    ----------
    push(item, priority)
        Insert a new item or update an existing one (either direction).
    pop()
        Remove and return ``(item, priority)`` with the smallest priority.
    priority(item)
        Current priority of ``item`` (raises ``KeyError`` when absent).
    """

    def __init__(self) -> None:
        self._heap: list[tuple[object, int, T]] = []  # (priority, tiebreak, item)
        self._position: dict[T, int] = {}
        self._counter = 0

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def __contains__(self, item: T) -> bool:
        return item in self._position

    def __iter__(self) -> Iterator[T]:
        return iter(list(self._position))

    def priority(self, item: T) -> object:
        """Return the current priority of ``item``."""
        index = self._position[item]
        return self._heap[index][0]

    def push(self, item: T, priority: object) -> None:
        """Insert ``item`` or change its priority (up or down)."""
        if item in self._position:
            index = self._position[item]
            old_priority, tiebreak, _ = self._heap[index]
            self._heap[index] = (priority, tiebreak, item)
            if priority < old_priority:  # type: ignore[operator]
                self._sift_up(index)
            else:
                self._sift_down(index)
            return
        self._counter += 1
        self._heap.append((priority, self._counter, item))
        index = len(self._heap) - 1
        self._position[item] = index
        self._sift_up(index)

    def pop(self) -> tuple[T, object]:
        """Remove and return the ``(item, priority)`` with smallest priority."""
        if not self._heap:
            raise IndexError("pop from an empty priority queue")
        priority, _, item = self._heap[0]
        last = self._heap.pop()
        del self._position[item]
        if self._heap:
            self._heap[0] = last
            self._position[last[2]] = 0
            self._sift_down(0)
        return item, priority

    def peek(self) -> tuple[T, object]:
        """Return (without removing) the smallest ``(item, priority)``."""
        if not self._heap:
            raise IndexError("peek at an empty priority queue")
        priority, _, item = self._heap[0]
        return item, priority

    def discard(self, item: T) -> None:
        """Remove ``item`` if present (no error when absent)."""
        index = self._position.pop(item, None)
        if index is None:
            return
        last = self._heap.pop()
        if index < len(self._heap):
            self._heap[index] = last
            self._position[last[2]] = index
            self._sift_down(index)
            self._sift_up(index)

    # ------------------------------------------------------------------ #
    # heap mechanics
    # ------------------------------------------------------------------ #
    def _less(self, a: int, b: int) -> bool:
        pa, ta, _ = self._heap[a]
        pb, tb, _ = self._heap[b]
        if pa == pb:
            return ta < tb
        return pa < pb  # type: ignore[operator]

    def _swap(self, a: int, b: int) -> None:
        self._heap[a], self._heap[b] = self._heap[b], self._heap[a]
        self._position[self._heap[a][2]] = a
        self._position[self._heap[b][2]] = b

    def _sift_up(self, index: int) -> None:
        while index > 0:
            parent = (index - 1) // 2
            if self._less(index, parent):
                self._swap(index, parent)
                index = parent
            else:
                break

    def _sift_down(self, index: int) -> None:
        size = len(self._heap)
        while True:
            left = 2 * index + 1
            right = left + 1
            smallest = index
            if left < size and self._less(left, smallest):
                smallest = left
            if right < size and self._less(right, smallest):
                smallest = right
            if smallest == index:
                return
            self._swap(index, smallest)
            index = smallest
