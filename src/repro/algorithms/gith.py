"""GitH — the Git repack heuristic (Section 4.4 and Appendix A).

Git packs a repository by sorting objects (primarily by size, decreasing),
then scanning them while keeping a sliding *window* of recently considered
objects.  Each object is delta-compressed against the window member that
yields the smallest *depth-biased* delta::

    score(B, O) = delta(B, O) / (max_depth - depth(B))

so shallow bases are preferred over slightly smaller deltas hanging off long
chains, and no chain may exceed ``max_depth``.  After choosing a base the
window is shuffled: the chosen base moves to the end (it stays around
longer) and the new object enters the window.

The reproduction operates on a :class:`~repro.core.instance.ProblemInstance`
and only uses deltas that have been revealed in the Δ matrix — mirroring how
the paper ran GitH "restricted to choose from deltas that were available to
the other algorithms".
"""

from __future__ import annotations

from collections import deque

from ..core.instance import ProblemInstance
from ..core.storage_plan import StoragePlan
from ..core.version import VersionID
from ..exceptions import SolverError

__all__ = ["git_heuristic_plan", "gith_sweep"]


def git_heuristic_plan(
    instance: ProblemInstance,
    window: int = 10,
    max_depth: int = 50,
    *,
    unlimited_window: bool = False,
) -> StoragePlan:
    """Build a storage plan with the Git repack heuristic.

    Parameters
    ----------
    instance:
        The versions and Δ/Φ matrices.
    window:
        Size of the sliding window of candidate delta bases.
    max_depth:
        Maximum allowed delta-chain length; a version whose best base sits at
        ``max_depth - 1`` is materialized instead of extending the chain.
    unlimited_window:
        When true, every previously processed version stays in the window
        (the "infinite window" setting the paper uses for the DC/LC/LF runs).

    Returns
    -------
    StoragePlan
        A feasible plan; versions with no usable base in the window are
        materialized, so the plan always covers every version.
    """
    if window < 1:
        raise SolverError(f"GitH window must be at least 1, got {window}")
    if max_depth < 1:
        raise SolverError(f"GitH max depth must be at least 1, got {max_depth}")

    # Step 1 of the appendix: sort by size, largest first (we have no "type"
    # or "name hash" distinction between dataset versions).
    ordering = sorted(
        instance.version_ids,
        key=lambda vid: (-instance.materialization_storage(vid), str(vid)),
    )

    plan = StoragePlan()
    depth: dict[VersionID, int] = {}
    window_deque: deque[VersionID] = deque()

    for vid in ordering:
        best_base: VersionID | None = None
        best_score = float("inf")
        for base in window_deque:
            if depth[base] >= max_depth:
                continue
            delta = instance.cost_model.delta.get(base, vid)
            if delta is None:
                continue
            score = delta / (max_depth - depth[base])
            if score < best_score:
                best_score = score
                best_base = base

        if best_base is None:
            plan.materialize(vid)
            depth[vid] = 0
        else:
            # Only keep the delta when it actually saves storage over
            # materializing the version outright (git always wins here
            # because deltas are smaller than objects; with arbitrary cost
            # matrices we check explicitly).
            delta_cost = instance.cost_model.delta[best_base, vid]
            if delta_cost < instance.materialization_storage(vid):
                plan.assign(vid, best_base)
                depth[vid] = depth[best_base] + 1
                # Shuffle: move the chosen base to the end of the window.
                window_deque.remove(best_base)
                window_deque.append(best_base)
            else:
                plan.materialize(vid)
                depth[vid] = 0

        window_deque.append(vid)
        if not unlimited_window:
            while len(window_deque) > window:
                window_deque.popleft()

    return plan


def gith_sweep(
    instance: ProblemInstance,
    windows: list[int],
    max_depth: int = 50,
) -> list[tuple[int, StoragePlan]]:
    """Run GitH for several window sizes (Figure 13, BF panel)."""
    return [
        (window, git_heuristic_plan(instance, window=window, max_depth=max_depth))
        for window in windows
    ]
