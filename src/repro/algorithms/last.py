"""LAST — balancing the MST and the shortest-path tree (Section 4.3).

The paper adapts the LAST construction of Khuller, Raghavachari and Young
("Balancing minimum spanning trees and shortest-path trees", Algorithmica
1995) as a baseline for the recreation/storage tradeoff: starting from the
storage-optimal tree, perform a depth-first traversal and, whenever the
accumulated recreation cost of the node being visited exceeds ``α`` times its
shortest-path recreation cost, splice the shortest path to that node into
the tree.

For undirected graphs with Φ = Δ the construction guarantees that

* every node's recreation cost is within ``α`` times its shortest-path cost,
  and
* the total storage cost is within ``1 + 2 / (α - 1)`` times the MST cost.

For directed instances the same procedure is applied (on the minimum-cost
arborescence) without the guarantees, exactly as the paper does.
"""

from __future__ import annotations

from ..core.instance import ROOT, ProblemInstance
from ..core.storage_plan import StoragePlan
from ..core.version import VersionID
from ..exceptions import SolverError
from .mst import minimum_storage_plan
from .shortest_path import shortest_path_tree

__all__ = ["last_plan", "last_sweep"]


def last_plan(
    instance: ProblemInstance,
    alpha: float = 2.0,
    *,
    initial_plan: StoragePlan | None = None,
) -> StoragePlan:
    """Build a LAST-balanced storage plan.

    Parameters
    ----------
    instance:
        The versions and Δ/Φ matrices.
    alpha:
        The balance parameter (> 1).  Small values favor recreation cost
        (the result approaches the shortest-path tree), large values favor
        storage (the result approaches the MST / arborescence).
    initial_plan:
        Start the traversal from this plan instead of the storage-optimal
        tree (used by ablation benchmarks).

    Returns
    -------
    StoragePlan
        A plan in which every version's recreation cost is at most
        ``alpha`` times its shortest-path recreation cost.
    """
    if alpha <= 1.0:
        raise SolverError(f"LAST requires alpha > 1, got {alpha}")

    base = initial_plan.copy() if initial_plan is not None else minimum_storage_plan(instance)
    spt_parent = shortest_path_tree(instance)

    # Shortest-path recreation cost of every version (through the SPT).
    spt_plan = StoragePlan()
    for child, parent in spt_parent.items():
        spt_plan.assign(child, parent)
    shortest = spt_plan.recreation_costs(instance)

    plan = base.copy()
    children = base.children_map()
    distance: dict[VersionID, float] = {}

    # Iterative DFS over the base tree, mirroring Algorithm 3: relax the
    # child's distance through the tree edge being traversed, then splice in
    # the shortest path when the relaxed distance exceeds alpha times the
    # shortest-path distance.
    stack: list[tuple[object, VersionID]] = [
        (ROOT, child) for child in reversed(children.get(ROOT, []))
    ]
    while stack:
        parent_node, node = stack.pop()
        parent_distance = 0.0 if parent_node is ROOT else distance[parent_node]
        if parent_node is ROOT:
            edge_cost = instance.materialization_recreation(node)
        else:
            edge_cost = instance.delta_recreation(parent_node, node)
        relaxed = parent_distance + edge_cost
        current = distance.get(node)
        if current is None or relaxed < current:
            distance[node] = relaxed
            plan.assign(node, parent_node)
        if distance[node] > alpha * shortest[node] + 1e-12:
            _splice_shortest_path(instance, plan, spt_parent, shortest, distance, node)
        for child in reversed(children.get(node, [])):
            stack.append((node, child))
    return plan


def _splice_shortest_path(
    instance: ProblemInstance,
    plan: StoragePlan,
    spt_parent: dict[VersionID, VersionID],
    shortest: dict[VersionID, float],
    distance: dict[VersionID, float],
    node: VersionID,
) -> None:
    """Replace the path to ``node`` with its shortest path from the root.

    Walks up the shortest-path tree from ``node`` re-parenting every vertex
    on the way whose recorded distance improves; this keeps the plan a tree
    and realizes the shortest-path recreation cost for ``node``.
    """
    chain: list[VersionID] = []
    current: VersionID = node
    while current is not ROOT:
        chain.append(current)
        current = spt_parent[current]
    # Process from the root side down so parents are settled before children.
    for vertex in reversed(chain):
        parent = spt_parent[vertex]
        plan.assign(vertex, parent)
        distance[vertex] = shortest[vertex]


def last_sweep(
    instance: ProblemInstance, alphas: list[float]
) -> list[tuple[float, StoragePlan]]:
    """Run LAST for a list of α values (used by the figure benches)."""
    return [(alpha, last_plan(instance, alpha)) for alpha in alphas]
