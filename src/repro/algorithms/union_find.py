"""Disjoint-set (union-find) structure with union by rank and path compression.

Used by Kruskal's minimum-spanning-tree construction and by the cycle
detection inside Edmonds' arborescence algorithm.
"""

from __future__ import annotations

from typing import Hashable, Iterable, TypeVar

__all__ = ["UnionFind"]

T = TypeVar("T", bound=Hashable)


class UnionFind:
    """Classic disjoint-set forest over arbitrary hashable items."""

    def __init__(self, items: Iterable[T] = ()) -> None:
        self._parent: dict[T, T] = {}
        self._rank: dict[T, int] = {}
        self._count = 0
        for item in items:
            self.add(item)

    def add(self, item: T) -> None:
        """Register ``item`` as its own singleton set (idempotent)."""
        if item not in self._parent:
            self._parent[item] = item
            self._rank[item] = 0
            self._count += 1

    def __contains__(self, item: T) -> bool:
        return item in self._parent

    def __len__(self) -> int:
        return len(self._parent)

    @property
    def num_sets(self) -> int:
        """Number of disjoint sets currently tracked."""
        return self._count

    def find(self, item: T) -> T:
        """Return the representative of the set containing ``item``."""
        self.add(item)
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        # Path compression.
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def connected(self, a: T, b: T) -> bool:
        """True when ``a`` and ``b`` are in the same set."""
        return self.find(a) == self.find(b)

    def union(self, a: T, b: T) -> bool:
        """Merge the sets of ``a`` and ``b``; return False if already merged."""
        root_a, root_b = self.find(a), self.find(b)
        if root_a == root_b:
            return False
        rank_a, rank_b = self._rank[root_a], self._rank[root_b]
        if rank_a < rank_b:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        if rank_a == rank_b:
            self._rank[root_a] += 1
        self._count -= 1
        return True
