"""Minimum-cost arborescence (Edmonds / Chu–Liu) for directed instances.

For directed cost models, Problem 1 (minimize total storage) is solved by a
minimum-cost arborescence of the augmented graph rooted at the dummy vertex
``V0`` — the paper calls this the MCA solution and uses it as the storage
lower bound throughout the evaluation (Figures 12–15).

The implementation below is the classic recursive contraction algorithm:
pick the cheapest incoming edge of every vertex; if the selection is acyclic
it is optimal, otherwise contract a cycle, adjust the weights of edges
entering it and recurse.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Sequence

from ..core.instance import ROOT, ProblemInstance
from ..core.storage_plan import StoragePlan
from ..exceptions import SolverError

__all__ = ["minimum_arborescence", "minimum_arborescence_plan", "arborescence_weight"]

Node = Hashable


class _Edge:
    """Internal edge record; ``base`` points to the previous contraction level."""

    __slots__ = ("u", "v", "w", "base")

    def __init__(self, u: Node, v: Node, w: float, base: "_Edge | None" = None) -> None:
        self.u = u
        self.v = v
        self.w = w
        self.base = base

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_Edge({self.u!r} -> {self.v!r}, w={self.w})"


class _SuperNode:
    """Placeholder vertex created when a cycle is contracted."""

    __slots__ = ("label",)

    def __init__(self, label: int) -> None:
        self.label = label

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<cycle#{self.label}>"


def minimum_arborescence(
    nodes: Iterable[Node],
    edges: Sequence[tuple[Node, Node, float]],
    root: Node,
) -> dict[Node, Node]:
    """Compute a minimum-cost spanning arborescence rooted at ``root``.

    Parameters
    ----------
    nodes:
        All vertices, including the root.
    edges:
        ``(u, v, weight)`` triples.  Self-loops and edges entering the root
        are ignored.  Parallel edges are allowed; the cheapest useful one is
        picked automatically.
    root:
        The arborescence root.

    Returns
    -------
    dict
        ``child -> parent`` for every vertex except the root.

    Raises
    ------
    SolverError
        If some vertex has no incoming edge reachable from the root.
    """
    node_list = list(dict.fromkeys(nodes))
    if root not in node_list:
        raise SolverError(f"root {root!r} is not one of the graph nodes")
    internal_edges = [
        _Edge(u, v, float(w))
        for u, v, w in edges
        if u != v and v != root
    ]
    chosen = _solve(node_list, internal_edges, root, _counter=[0])
    parent: dict[Node, Node] = {}
    for edge in chosen:
        original = edge
        while original.base is not None:
            original = original.base
        parent[original.v] = original.u
    missing = [n for n in node_list if n != root and n not in parent]
    if missing:
        raise SolverError(
            f"no arborescence rooted at {root!r}: vertices {missing[:5]!r} are unreachable"
        )
    return parent


def _solve(
    nodes: list[Node], edges: list[_Edge], root: Node, _counter: list[int]
) -> list[_Edge]:
    """Recursive Chu–Liu/Edmonds step returning the chosen edge objects."""
    min_in: dict[Node, _Edge] = {}
    for edge in edges:
        best = min_in.get(edge.v)
        if best is None or edge.w < best.w:
            min_in[edge.v] = edge
    for node in nodes:
        if node != root and node not in min_in:
            raise SolverError(f"vertex {node!r} has no incoming edge")

    cycle = _find_cycle(nodes, min_in, root)
    if cycle is None:
        return list(min_in.values())

    cycle_set = set(cycle)
    _counter[0] += 1
    supernode = _SuperNode(_counter[0])
    contracted_nodes = [n for n in nodes if n not in cycle_set] + [supernode]
    contracted_edges: list[_Edge] = []
    for edge in edges:
        in_u, in_v = edge.u in cycle_set, edge.v in cycle_set
        if in_u and in_v:
            continue
        if in_v:
            adjusted = edge.w - min_in[edge.v].w
            contracted_edges.append(_Edge(edge.u, supernode, adjusted, base=edge))
        elif in_u:
            contracted_edges.append(_Edge(supernode, edge.v, edge.w, base=edge))
        else:
            contracted_edges.append(_Edge(edge.u, edge.v, edge.w, base=edge))

    chosen = _solve(contracted_nodes, contracted_edges, root, _counter)

    result: list[_Edge] = []
    entering_cycle_at: Node | None = None
    for edge in chosen:
        base = edge.base
        if base is None:  # pragma: no cover - defensive, bases always set here
            raise SolverError("internal error: contracted edge lost its origin")
        result.append(base)
        if edge.v is supernode:
            entering_cycle_at = base.v
    if entering_cycle_at is None:
        raise SolverError(
            "internal error: contracted cycle received no incoming edge"
        )
    for node in cycle:
        if node != entering_cycle_at:
            result.append(min_in[node])
    return result


def _find_cycle(
    nodes: list[Node], min_in: dict[Node, _Edge], root: Node
) -> list[Node] | None:
    """Find one cycle in the parent selection, or ``None`` when acyclic."""
    color: dict[Node, int] = {}
    for start in nodes:
        if start == root or color.get(start) == 2:
            continue
        path: list[Node] = []
        node: Node = start
        while True:
            if node == root or color.get(node) == 2:
                break
            if color.get(node) == 1:
                # Found a node already on the current path: extract the cycle.
                index = path.index(node)
                for visited in path:
                    color[visited] = 2
                return path[index:]
            color[node] = 1
            path.append(node)
            node = min_in[node].u
        for visited in path:
            color[visited] = 2
    return None


def arborescence_weight(
    parent: dict[Node, Node], edges: Sequence[tuple[Node, Node, float]]
) -> float:
    """Total weight of an arborescence given the edge list it was built from.

    When parallel edges exist the cheapest matching one is used, which is
    what :func:`minimum_arborescence` would have chosen.
    """
    best: dict[tuple[Node, Node], float] = {}
    for u, v, w in edges:
        key = (u, v)
        if key not in best or w < best[key]:
            best[key] = float(w)
    return float(sum(best[(p, c)] for c, p in parent.items()))


def minimum_arborescence_plan(instance: ProblemInstance) -> StoragePlan:
    """Problem 1 on a directed instance: the minimum-cost arborescence plan."""
    nodes: list[Node] = [ROOT] + list(instance.version_ids)
    edges: list[tuple[Node, Node, float]] = []
    for vid in instance.version_ids:
        edges.append((ROOT, vid, instance.materialization_storage(vid)))
    for (source, target), weight in instance.cost_model.delta.off_diagonal_items():
        if source in instance and target in instance:
            edges.append((source, target, weight))
    parent = minimum_arborescence(nodes, edges, ROOT)
    plan = StoragePlan()
    for child, par in parent.items():
        plan.assign(child, par)
    return plan
