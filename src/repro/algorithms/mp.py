"""MP — the Modified Prim heuristic (Problems 4 and 6).

Section 4.2 of the paper.  MP applies when the *maximum* recreation cost is
bounded or minimized:

* Problem 6 — minimize total storage ``C`` subject to ``max R_i ≤ θ``;
* Problem 4 — minimize ``max R_i`` subject to ``C ≤ β`` (solved here by a
  bisection over θ that repeatedly calls the Problem 6 routine).

The heuristic grows a spanning tree from the dummy root in the manner of
Prim's algorithm, always dequeuing the version with the smallest *marginal
storage cost* ``l(V_i)``, while maintaining the invariant that the recorded
recreation cost ``d(V_i)`` of every version in the tree stays within θ.
Unlike plain Prim, a version already inside the tree can later be re-parented
when a cheaper delta towards it is discovered that does not worsen its
recreation cost (lines 10–17 of Algorithm 2 in the paper).
"""

from __future__ import annotations

import math

from ..core.instance import ROOT, ProblemInstance
from ..core.storage_plan import StoragePlan
from ..core.version import VersionID
from ..exceptions import InfeasibleProblemError, SolverError
from .priority_queue import AddressablePriorityQueue
from .shortest_path import shortest_path_distances

__all__ = ["modified_prim", "solve_problem_4", "minimum_feasible_threshold"]


def minimum_feasible_threshold(instance: ProblemInstance) -> float:
    """The smallest θ for which Problem 6 is feasible.

    Every version can always be materialized, so θ must be at least the
    largest shortest-path recreation cost (which is itself at most the
    largest materialization cost).
    """
    distances = shortest_path_distances(instance)
    return float(max(distances.values()))


def modified_prim(
    instance: ProblemInstance,
    recreation_threshold: float,
    *,
    strict: bool = True,
) -> StoragePlan:
    """Problem 6: minimize total storage subject to ``max R_i ≤ θ``.

    Parameters
    ----------
    instance:
        The versions and Δ/Φ matrices.
    recreation_threshold:
        The bound θ on every version's recreation cost.
    strict:
        When true (default), raise
        :class:`~repro.exceptions.InfeasibleProblemError` if θ is below the
        minimum feasible threshold.  When false, clamp θ up to that minimum
        instead (useful inside parameter sweeps).

    Returns
    -------
    StoragePlan
        A feasible plan whose maximum recreation cost is at most θ.
    """
    theta = float(recreation_threshold)
    minimum = minimum_feasible_threshold(instance)
    if theta < minimum - 1e-9:
        if strict:
            raise InfeasibleProblemError(
                f"recreation threshold {theta:g} is below the minimum feasible "
                f"threshold {minimum:g}"
            )
        theta = minimum

    # l(v): marginal storage cost of the best known edge into v.
    # d(v): recreation cost of v through that edge.
    # p(v): the corresponding parent.
    storage_label: dict[VersionID, float] = {vid: math.inf for vid in instance.version_ids}
    recreation_label: dict[VersionID, float] = {vid: math.inf for vid in instance.version_ids}
    parent: dict[VersionID, VersionID] = {}
    in_tree: set[VersionID] = set()

    queue: AddressablePriorityQueue[object] = AddressablePriorityQueue()
    queue.push(ROOT, 0.0)
    root_recreation = {ROOT: 0.0}

    while queue:
        node, _ = queue.pop()
        if node is not ROOT:
            in_tree.add(node)
        node_recreation = root_recreation[ROOT] if node is ROOT else recreation_label[node]

        for edge in instance.out_edges(node):
            target = edge.target
            candidate_recreation = node_recreation + edge.recreation
            if target in in_tree:
                # Re-parent a version already in the tree when the new delta
                # is cheaper to store and does not worsen its recreation cost.
                if (
                    candidate_recreation <= recreation_label[target] + 1e-12
                    and edge.storage < storage_label[target] - 1e-12
                    and not _is_ancestor(parent, target, node)
                ):
                    parent[target] = node if node is not ROOT else ROOT
                    recreation_label[target] = candidate_recreation
                    storage_label[target] = edge.storage
                continue
            if candidate_recreation > theta * (1 + 1e-12) + 1e-9:
                continue
            if edge.storage < storage_label[target] - 1e-12:
                storage_label[target] = edge.storage
                recreation_label[target] = candidate_recreation
                parent[target] = node if node is not ROOT else ROOT
                queue.push(target, edge.storage)

    plan = StoragePlan()
    for vid in instance.version_ids:
        if vid in parent:
            plan.assign(vid, parent[vid])

    missing = [vid for vid in instance.version_ids if vid not in in_tree and vid not in parent]
    if missing:
        # Greedy growth can strand a version when its materialization cost
        # alone exceeds θ and every delta towards it hangs off a subtree the
        # greedy order attached at a higher recreation cost than its
        # shortest path.  Splicing the version's shortest path into the plan
        # restores feasibility (every prefix of a shortest path is within θ
        # whenever θ is at least the minimum feasible threshold).
        from .shortest_path import shortest_path_tree

        spt_parent = shortest_path_tree(instance)
        for vid in missing:
            chain: list[VersionID] = []
            node: VersionID = vid
            while node is not ROOT:
                chain.append(node)
                node = spt_parent[node]
            for vertex in reversed(chain):
                plan.assign(vertex, spt_parent[vertex])

    _repair_recreation_violations(instance, plan, theta)
    return plan


def _is_ancestor(
    parent: dict[VersionID, VersionID], candidate: VersionID, node: object
) -> bool:
    """True when ``candidate`` lies on the parent chain of ``node``.

    Used to reject re-parenting moves that would create a cycle (storing a
    version as a delta from one of its own descendants).
    """
    current = node
    while current is not ROOT and current in parent:
        if current == candidate:
            return True
        current = parent[current]
    return current == candidate


def _repair_recreation_violations(
    instance: ProblemInstance, plan: StoragePlan, theta: float
) -> None:
    """Materialize any version whose realized recreation cost exceeds θ.

    The re-parenting step keeps per-version labels within θ but, because a
    parent's recreation cost can later *decrease* without propagating to the
    labels of its descendants, the realized costs can only be lower — except
    in rare tie situations caused by floating-point noise.  This repair pass
    guarantees the returned plan honors the bound exactly.
    """
    recreation = plan.recreation_costs(instance)
    changed = False
    for vid, cost in recreation.items():
        if cost > theta * (1 + 1e-9) + 1e-6:
            plan.materialize(vid)
            changed = True
    if changed:
        # Materializing a version only lowers its subtree's costs, but repeat
        # once more in case several chained violations existed.
        recreation = plan.recreation_costs(instance)
        for vid, cost in recreation.items():
            if cost > theta * (1 + 1e-9) + 1e-6:
                plan.materialize(vid)


def solve_problem_4(
    instance: ProblemInstance,
    storage_budget: float,
    *,
    iterations: int = 40,
) -> StoragePlan:
    """Problem 4: minimize ``max R_i`` subject to ``C ≤ β``.

    The decision versions of Problems 4 and 6 coincide, so this routine
    bisects on the recreation threshold θ and keeps the smallest θ whose
    Problem 6 solution fits within the storage budget.
    """
    low = minimum_feasible_threshold(instance)
    # A generous upper bound: recreate everything through the storage-optimal
    # tree (θ can never usefully exceed the total recreation cost of a chain
    # through every version).
    high = max(
        low,
        float(
            sum(
                instance.materialization_recreation(vid)
                for vid in instance.version_ids
            )
        ),
    )

    best_plan: StoragePlan | None = None
    plan_low = modified_prim(instance, low, strict=False)
    if plan_low.storage_cost(instance) <= storage_budget * (1 + 1e-12) + 1e-9:
        return plan_low

    plan_high = modified_prim(instance, high, strict=False)
    if plan_high.storage_cost(instance) > storage_budget * (1 + 1e-12) + 1e-9:
        raise InfeasibleProblemError(
            f"storage budget {storage_budget:g} is below what modified Prim can "
            f"achieve even with an unbounded recreation threshold "
            f"({plan_high.storage_cost(instance):g})"
        )
    best_plan = plan_high

    for _ in range(iterations):
        mid = (low + high) / 2.0
        plan = modified_prim(instance, mid, strict=False)
        if plan.storage_cost(instance) <= storage_budget * (1 + 1e-12) + 1e-9:
            best_plan = plan
            high = mid
        else:
            low = mid
    assert best_plan is not None
    return best_plan
