"""``python -m repro`` — console entry point for the prototype CLI."""

from .cli import main

if __name__ == "__main__":
    raise SystemExit(main())
