"""Independent-compression baseline ("naive gzip").

Section 5.2 of the paper contrasts version-aware storage against simply
compressing every version independently with gzip — no cross-version
redundancy is exploited, so storage stays large, but every version can be
read back with a single decompression (recreation cost stays flat).

Two entry points are provided:

* :func:`gzip_payload_report` — compress actual payloads (used together
  with the table generator);
* :func:`gzip_cost_report` — when only a cost model is available, apply an
  assumed compression ratio to the materialization costs.
"""

from __future__ import annotations

from typing import Mapping

from ..core.instance import ProblemInstance
from ..core.version import VersionID
from ..delta.compression import gzip_size
from ..delta.base import payload_size

__all__ = ["GzipReport", "gzip_payload_report", "gzip_cost_report"]


class GzipReport:
    """Storage/recreation costs of compressing each version independently."""

    def __init__(
        self,
        storage_cost: float,
        sum_recreation: float,
        max_recreation: float,
        per_version: dict[VersionID, float],
    ) -> None:
        self.storage_cost = storage_cost
        self.sum_recreation = sum_recreation
        self.max_recreation = max_recreation
        self.per_version = per_version

    def as_dict(self) -> dict[str, float]:
        """Flat dictionary used by the Section 5.2 comparison bench."""
        return {
            "storage_cost": self.storage_cost,
            "sum_recreation": self.sum_recreation,
            "max_recreation": self.max_recreation,
        }


def gzip_payload_report(
    payloads: Mapping[VersionID, object],
    *,
    level: int = 6,
    decompression_overhead: float = 0.05,
) -> GzipReport:
    """Compress every payload independently and report the realized costs.

    Recreation cost of a version is its uncompressed size (the read) plus a
    decompression surcharge proportional to it.
    """
    compressed: dict[VersionID, float] = {}
    recreation: dict[VersionID, float] = {}
    for vid, payload in payloads.items():
        compressed[vid] = gzip_size(payload, level)
        raw = payload_size(payload)
        recreation[vid] = raw * (1.0 + decompression_overhead)
    return GzipReport(
        storage_cost=float(sum(compressed.values())),
        sum_recreation=float(sum(recreation.values())),
        max_recreation=float(max(recreation.values())) if recreation else 0.0,
        per_version=compressed,
    )


def gzip_cost_report(
    instance: ProblemInstance,
    *,
    compression_ratio: float = 3.0,
    decompression_overhead: float = 0.05,
) -> GzipReport:
    """Model the gzip baseline on a cost-only instance.

    Each version's storage is its materialization cost divided by the
    assumed ``compression_ratio``; its recreation cost is its full
    materialization recreation cost plus the decompression surcharge.
    """
    if compression_ratio <= 0:
        raise ValueError("compression_ratio must be positive")
    compressed: dict[VersionID, float] = {}
    recreation: dict[VersionID, float] = {}
    for vid in instance.version_ids:
        full = instance.materialization_storage(vid)
        compressed[vid] = full / compression_ratio
        recreation[vid] = instance.materialization_recreation(vid) * (
            1.0 + decompression_overhead
        )
    return GzipReport(
        storage_cost=float(sum(compressed.values())),
        sum_recreation=float(sum(recreation.values())),
        max_recreation=float(max(recreation.values())) if recreation else 0.0,
        per_version=compressed,
    )
