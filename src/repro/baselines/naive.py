"""Naive storage baselines.

Two extreme layouts the paper uses as reference points throughout the
evaluation:

* **materialize everything** — every version stored in full (Figure 1(ii)):
  minimum recreation cost, maximum storage cost;
* **single chain** — one version materialized, everything else a chain of
  deltas along the version graph (Figure 1(iii)): close to minimum storage,
  but recreation costs grow with the chain length.
"""

from __future__ import annotations

from ..core.instance import ProblemInstance
from ..core.storage_plan import StoragePlan
from ..core.version import VersionID
from ..exceptions import SolverError

__all__ = ["materialize_all_plan", "single_chain_plan"]


def materialize_all_plan(instance: ProblemInstance) -> StoragePlan:
    """Store every version in its entirety (the "store everything" baseline)."""
    return StoragePlan.materialize_all(instance.version_ids)


def single_chain_plan(
    instance: ProblemInstance, root: VersionID | None = None
) -> StoragePlan:
    """Materialize a single version, store every other version as a delta.

    Versions are attached greedily in breadth-first order from ``root``
    (default: the first version), always through the cheapest revealed delta
    from an already-attached version.  Versions unreachable through revealed
    deltas are materialized — the plan must stay feasible even on sparse
    matrices.
    """
    ids = instance.version_ids
    if not ids:
        raise SolverError("cannot build a chain over an empty instance")
    start = root if root is not None else ids[0]
    if start not in instance:
        raise SolverError(f"chain root {start!r} is not part of the instance")

    plan = StoragePlan()
    plan.materialize(start)
    attached = {start}
    remaining = set(ids) - attached

    # Repeatedly attach the cheapest (delta-storage-wise) edge from the
    # attached set into the remaining set; this is Prim restricted to delta
    # edges, which keeps the construction deterministic and cheap.
    while remaining:
        best_edge: tuple[float, VersionID, VersionID] | None = None
        for source in attached:
            for target, storage in instance.cost_model.delta.row(source).items():
                if target in remaining:
                    candidate = (storage, str(target), target)
                    if best_edge is None or candidate[:2] < best_edge[:2]:
                        best_edge = (storage, str(target), target)
                        best_source = source
        if best_edge is None:
            # No revealed delta reaches the remaining versions: materialize
            # the smallest remaining one and continue from there.
            fallback = min(remaining, key=lambda vid: instance.materialization_storage(vid))
            plan.materialize(fallback)
            attached.add(fallback)
            remaining.discard(fallback)
            continue
        _, _, target = best_edge
        plan.assign(target, best_source)
        attached.add(target)
        remaining.discard(target)
    return plan
