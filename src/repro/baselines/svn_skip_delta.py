"""SVN-style skip-delta baseline.

Section 5.2 of the paper compares against SVN, whose FSFS backend stores a
new revision as a delta against a carefully chosen earlier revision (a
"skip delta") so that at most O(log n) deltas ever have to be applied to
reconstruct any revision.  The price is redundancy: the same content ends up
encoded in several overlapping deltas, which is why the paper observes SVN
using far more space than the optimal arborescence.

This module reproduces the skip-delta *placement rule* on top of our cost
matrices.  Versions are arranged in a linear revision order (topological
order of the version graph / instance); revision ``r`` is stored as a delta
from revision ``r - 2^k`` where ``2^k`` is the largest power of two dividing
``r`` — revision 0 is materialized.  When the required delta has not been
revealed in the Δ matrix, the cost of that delta is *estimated* by chaining
revealed deltas along the revision order (the sum of the intermediate delta
costs, capped at materializing the version), mirroring how SVN recomputes a
combined delta text.
"""

from __future__ import annotations

from ..core.instance import ProblemInstance
from ..core.storage_plan import StoragePlan
from ..core.version import VersionID

__all__ = ["skip_delta_parent_index", "svn_skip_delta_report", "SkipDeltaReport"]


def skip_delta_parent_index(revision: int) -> int:
    """The revision a skip-delta scheme diffs revision ``revision`` against.

    Clearing the lowest set bit of ``revision`` yields ``revision - 2^k``
    where ``2^k`` is the largest power of two dividing it; revision 0 has no
    parent (it is materialized).  This bounds every reconstruction chain by
    the number of set bits, i.e. O(log n) delta applications.
    """
    if revision <= 0:
        return -1
    return revision & (revision - 1)


class SkipDeltaReport:
    """Realized costs of the skip-delta layout on a given instance."""

    def __init__(
        self,
        plan: StoragePlan,
        storage_cost: float,
        sum_recreation: float,
        max_recreation: float,
        max_chain_length: int,
        estimated_edges: int,
    ) -> None:
        self.plan = plan
        self.storage_cost = storage_cost
        self.sum_recreation = sum_recreation
        self.max_recreation = max_recreation
        self.max_chain_length = max_chain_length
        self.estimated_edges = estimated_edges

    def as_dict(self) -> dict[str, float]:
        """Flat dictionary used by the Section 5.2 comparison bench."""
        return {
            "storage_cost": self.storage_cost,
            "sum_recreation": self.sum_recreation,
            "max_recreation": self.max_recreation,
            "max_chain_length": float(self.max_chain_length),
            "estimated_edges": float(self.estimated_edges),
        }


def svn_skip_delta_report(instance: ProblemInstance) -> SkipDeltaReport:
    """Lay the instance out with the skip-delta rule and measure its costs.

    The version order is the instance's insertion order (the generators emit
    versions oldest-first, which matches SVN revision numbering).  Returns a
    report rather than a plain plan because some edges may be *estimated*
    (see module docstring) and therefore do not exist in the Δ matrix — the
    report carries the realized costs computed with those estimates.
    """
    order: list[VersionID] = list(instance.version_ids)
    index_of = {vid: index for index, vid in enumerate(order)}

    def chained_cost(source_index: int, target_index: int) -> tuple[float, float]:
        """Estimated (storage, recreation) of a delta spanning several revisions."""
        storage = 0.0
        recreation = 0.0
        step = 1 if target_index > source_index else -1
        position = source_index
        while position != target_index:
            nxt = position + step
            source, target = order[position], order[nxt]
            delta_storage = instance.cost_model.delta.get(source, target)
            delta_recreation = instance.cost_model.phi.get(source, target)
            if delta_storage is None or delta_recreation is None:
                # No revealed path: fall back to materialization cost.
                return (
                    instance.materialization_storage(order[target_index]),
                    instance.materialization_recreation(order[target_index]),
                )
            storage += delta_storage
            recreation += delta_recreation
            position = nxt
        target_vid = order[target_index]
        return (
            min(storage, instance.materialization_storage(target_vid)),
            min(recreation, instance.materialization_recreation(target_vid)),
        )

    plan = StoragePlan()
    storage_total = 0.0
    recreation: dict[VersionID, float] = {}
    chain_length: dict[VersionID, int] = {}
    estimated_edges = 0

    for revision, vid in enumerate(order):
        parent_index = skip_delta_parent_index(revision)
        if parent_index < 0:
            plan.materialize(vid)
            storage_total += instance.materialization_storage(vid)
            recreation[vid] = instance.materialization_recreation(vid)
            chain_length[vid] = 0
            continue
        parent_vid = order[parent_index]
        delta_storage = instance.cost_model.delta.get(parent_vid, vid)
        delta_recreation = instance.cost_model.phi.get(parent_vid, vid)
        if delta_storage is None or delta_recreation is None:
            delta_storage, delta_recreation = chained_cost(parent_index, index_of[vid])
            estimated_edges += 1
        if delta_storage >= instance.materialization_storage(vid):
            # Storing the skip delta would be no better than a full copy.
            plan.materialize(vid)
            storage_total += instance.materialization_storage(vid)
            recreation[vid] = instance.materialization_recreation(vid)
            chain_length[vid] = 0
            continue
        plan.assign(vid, parent_vid)
        storage_total += delta_storage
        recreation[vid] = recreation[parent_vid] + delta_recreation
        chain_length[vid] = chain_length[parent_vid] + 1

    return SkipDeltaReport(
        plan=plan,
        storage_cost=storage_total,
        sum_recreation=float(sum(recreation.values())),
        max_recreation=float(max(recreation.values())),
        max_chain_length=max(chain_length.values()),
        estimated_edges=estimated_edges,
    )
