"""Baseline storage schemes the paper compares against (Section 5.2).

* :mod:`~repro.baselines.naive` — materialize everything / single chain;
* :mod:`~repro.baselines.svn_skip_delta` — SVN's FSFS skip-delta placement;
* :mod:`~repro.baselines.gzip_baseline` — compress every version
  independently.
"""

from .gzip_baseline import GzipReport, gzip_cost_report, gzip_payload_report
from .naive import materialize_all_plan, single_chain_plan
from .svn_skip_delta import SkipDeltaReport, skip_delta_parent_index, svn_skip_delta_report

__all__ = [
    "GzipReport",
    "gzip_cost_report",
    "gzip_payload_report",
    "materialize_all_plan",
    "single_chain_plan",
    "SkipDeltaReport",
    "skip_delta_parent_index",
    "svn_skip_delta_report",
]
