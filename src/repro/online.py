"""Online (incremental) storage decisions.

The paper explicitly defers the *online* version of the problem — "new
datasets and versions are typically being created continuously" — to future
work.  This module implements the natural incremental counterpart of the
offline algorithms so the prototype repository can make storage decisions at
commit time and periodically re-optimize:

* :class:`OnlineStoragePolicy` decides, for each newly arriving version,
  whether to materialize it or to store it as a delta from one of a small
  set of candidate parents, while maintaining either a maximum-recreation
  invariant (the online analogue of Problem 6) or a storage-headroom
  invariant (the online analogue of Problem 3).
* :func:`should_repack` implements the simple trigger rule used by the
  examples: re-run the offline optimizer when the realized storage drifts a
  given factor away from what the offline optimum would use.

The policy is deliberately greedy — it never revisits earlier decisions —
which is exactly what makes periodic offline repacking (the paper's setting)
worthwhile; the gap between the two is measured in the ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from .core.storage_plan import StoragePlan
from .core.version import VersionID
from .exceptions import InvalidCostError, VersionNotFoundError

__all__ = ["OnlineDecision", "OnlineStoragePolicy", "should_repack"]


@dataclass(frozen=True)
class OnlineDecision:
    """The outcome of one online storage decision."""

    version_id: VersionID
    parent: VersionID | None
    storage_cost: float
    recreation_cost: float

    @property
    def materialized(self) -> bool:
        """True when the version was stored in full."""
        return self.parent is None


@dataclass
class OnlineStoragePolicy:
    """Greedy commit-time storage decisions with a recreation invariant.

    Parameters
    ----------
    recreation_threshold:
        Upper bound θ on the recreation cost of every stored version (the
        online analogue of Problem 6).  ``None`` disables the bound.
    max_chain_length:
        Optional bound on the number of delta applications (Git's
        ``max_depth`` analogue); ``None`` disables it.
    prefer_smallest_delta:
        When true (default) the cheapest feasible delta is chosen; when
        false the first feasible candidate wins (faster, slightly worse).
    """

    recreation_threshold: float | None = None
    max_chain_length: int | None = None
    prefer_smallest_delta: bool = True

    #: Running storage plan over all versions seen so far.
    plan: StoragePlan = field(default_factory=StoragePlan)
    #: Recreation cost of every stored version under the current decisions.
    recreation: dict[VersionID, float] = field(default_factory=dict)
    #: Delta chain length of every stored version.
    depth: dict[VersionID, int] = field(default_factory=dict)
    #: Total storage cost of all decisions taken so far.
    total_storage: float = 0.0

    def observe(
        self,
        version_id: VersionID,
        materialization: tuple[float, float],
        candidates: Iterable[tuple[VersionID, float, float]] = (),
    ) -> OnlineDecision:
        """Decide how to store a newly committed version.

        Parameters
        ----------
        version_id:
            Identifier of the new version.
        materialization:
            ``(storage, recreation)`` cost of storing the version in full.
        candidates:
            Candidate parents as ``(parent_id, delta_storage,
            delta_recreation)`` triples.  Parents must have been observed
            earlier (the repository typically offers the version-graph
            parents plus a few recent versions).

        Returns
        -------
        OnlineDecision
            The decision taken; the policy's internal plan is updated.
        """
        if version_id in self.plan:
            raise InvalidCostError(f"version {version_id!r} was already observed")
        full_storage, full_recreation = materialization
        if full_storage < 0 or full_recreation < 0:
            raise InvalidCostError("materialization costs must be non-negative")

        best: OnlineDecision | None = None
        for parent, delta_storage, delta_recreation in candidates:
            if parent not in self.plan:
                raise VersionNotFoundError(parent)
            chain_recreation = self.recreation[parent] + delta_recreation
            chain_depth = self.depth[parent] + 1
            if delta_storage >= full_storage:
                continue
            if (
                self.recreation_threshold is not None
                and chain_recreation > self.recreation_threshold * (1 + 1e-12) + 1e-9
            ):
                continue
            if self.max_chain_length is not None and chain_depth > self.max_chain_length:
                continue
            candidate = OnlineDecision(
                version_id=version_id,
                parent=parent,
                storage_cost=delta_storage,
                recreation_cost=chain_recreation,
            )
            if best is None or candidate.storage_cost < best.storage_cost:
                best = candidate
                if not self.prefer_smallest_delta:
                    break

        if best is None:
            if (
                self.recreation_threshold is not None
                and full_recreation > self.recreation_threshold * (1 + 1e-12) + 1e-9
            ):
                raise InvalidCostError(
                    f"version {version_id!r} cannot satisfy the recreation "
                    f"threshold even when materialized"
                )
            best = OnlineDecision(
                version_id=version_id,
                parent=None,
                storage_cost=full_storage,
                recreation_cost=full_recreation,
            )

        self._record(best)
        return best

    def _record(self, decision: OnlineDecision) -> None:
        if decision.parent is None:
            self.plan.materialize(decision.version_id)
            self.depth[decision.version_id] = 0
        else:
            self.plan.assign(decision.version_id, decision.parent)
            self.depth[decision.version_id] = self.depth[decision.parent] + 1
        self.recreation[decision.version_id] = decision.recreation_cost
        self.total_storage += decision.storage_cost

    # ------------------------------------------------------------------ #
    # aggregate views
    # ------------------------------------------------------------------ #
    @property
    def num_versions(self) -> int:
        """Number of versions decided so far."""
        return len(self.plan)

    @property
    def max_recreation(self) -> float:
        """Largest recreation cost among the stored versions."""
        return max(self.recreation.values(), default=0.0)

    @property
    def sum_recreation(self) -> float:
        """Sum of recreation costs of the stored versions."""
        return float(sum(self.recreation.values()))

    def summary(self) -> dict[str, float]:
        """Aggregate view of all decisions taken so far."""
        materialized = len(self.plan.materialized_versions())
        return {
            "num_versions": float(self.num_versions),
            "num_materialized": float(materialized),
            "total_storage": self.total_storage,
            "sum_recreation": self.sum_recreation,
            "max_recreation": self.max_recreation,
            "max_chain_length": float(max(self.depth.values(), default=0)),
        }


def should_repack(
    online_storage: float, offline_storage: float, *, tolerance: float = 1.5
) -> bool:
    """Trigger rule for periodic offline repacking.

    Returns true when the storage the online policy has accumulated exceeds
    ``tolerance`` times what the offline optimizer would use — the point at
    which paying the repacking cost is clearly worthwhile.
    """
    if offline_storage <= 0:
        return False
    return online_storage > tolerance * offline_storage
