"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised by the library derive from :class:`ReproError` so that
callers can catch everything originating from this package with a single
``except`` clause while still being able to distinguish specific failure
modes.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "VersionNotFoundError",
    "DuplicateVersionError",
    "MissingDeltaError",
    "InvalidCostError",
    "InvalidStoragePlanError",
    "InfeasibleProblemError",
    "CycleError",
    "RepositoryError",
    "ObjectNotFoundError",
    "MergeError",
    "StaleEpochError",
    "SnapshotConflictError",
    "LeaseError",
    "NotLeaseHolderError",
    "LeaseFencedError",
    "DeltaApplicationError",
    "SolverError",
]


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` package."""


class VersionNotFoundError(ReproError, KeyError):
    """A referenced version id does not exist in the graph or repository."""

    def __init__(self, version_id: object) -> None:
        super().__init__(f"version {version_id!r} does not exist")
        self.version_id = version_id


class DuplicateVersionError(ReproError, ValueError):
    """An attempt was made to register a version id that already exists."""

    def __init__(self, version_id: object) -> None:
        super().__init__(f"version {version_id!r} already exists")
        self.version_id = version_id


class MissingDeltaError(ReproError, KeyError):
    """A delta between two versions was requested but never revealed."""

    def __init__(self, source: object, target: object) -> None:
        super().__init__(f"no delta revealed from {source!r} to {target!r}")
        self.source = source
        self.target = target


class InvalidCostError(ReproError, ValueError):
    """A storage or recreation cost is negative, NaN or otherwise invalid."""


class InvalidStoragePlanError(ReproError, ValueError):
    """A storage plan is not a valid spanning tree rooted at the dummy vertex."""


class InfeasibleProblemError(ReproError, ValueError):
    """No storage plan can satisfy the requested constraint.

    For example a storage budget below the cost of the minimum spanning
    tree / arborescence, or a maximum-recreation threshold below the cost of
    materializing the largest version.
    """


class CycleError(ReproError, ValueError):
    """A version graph that must be acyclic contains a cycle."""


class RepositoryError(ReproError):
    """Base class for errors raised by the prototype version manager."""


class ObjectNotFoundError(RepositoryError, KeyError):
    """A content-addressed object is missing from the object store."""


class MergeError(RepositoryError):
    """A merge could not be performed (e.g. fewer than two parents)."""


class StaleEpochError(RepositoryError):
    """A transactional write was judged against metadata that moved underneath.

    Raised by the metadata catalog when a commit's delta base no longer
    matches the active snapshot's mapping for the parent version (a peer
    process repacked between encoding and the commit transaction).  The
    caller should resynchronize from the catalog and retry.
    """


class SnapshotConflictError(RepositoryError):
    """A staged snapshot could not be activated.

    Exactly one activation wins per epoch: when a peer process activated a
    different snapshot after this one was staged, the activation transaction
    refuses and the staged epoch must be failed and pruned instead.
    """


class LeaseError(RepositoryError):
    """Base class for replica-group lease coordination failures."""


class NotLeaseHolderError(LeaseError):
    """A planner-only operation was attempted by a replica without the lease.

    Raised by the serving layer when a replica joined to a group
    (``repro serve --join``) receives a repack or prune request while a
    peer holds the repack-planner lease.  The HTTP transport maps this to
    ``409 Conflict``: retry against the holder (its id is in ``/stats``
    under ``repack.lease.holder``), or wait for this replica to steal an
    expired lease.
    """


class LeaseFencedError(LeaseError):
    """A staged epoch's activation carried a stale fencing token.

    The activation transaction validates the fencing token captured when
    staging began against the lease table's current token.  A mismatch
    means the planner lost the lease mid-repack — it was paused past its
    TTL and a peer stole the lease — so activating would let a zombie
    planner swap in an epoch planned against state the group has moved
    past.  The staging is marked failed and must be pruned.
    """


class DeltaApplicationError(ReproError):
    """A delta could not be applied to the payload it claims to transform."""


class SolverError(ReproError):
    """An optimization algorithm failed to produce a valid storage plan."""
