"""Pluggable storage backends for the object store.

The object store used to be hard-wired to "a dict, optionally mirrored to a
directory of pickles".  Serving the paper's workloads at scale needs the
bytes to live in different places (RAM for tests and hot caches, plain files
for durability, compressed files for cold archives), so the *where* is now a
:class:`StorageBackend` — a minimal keyed blob interface the object store
delegates to.

Three implementations ship with the package, selectable with a URI-style
spec understood by :func:`open_backend`:

* ``memory://``   — :class:`MemoryBackend`, objects held in a dict;
* ``file://PATH`` — :class:`FilesystemBackend`, one pickle file per object
  (the on-disk layout of the historical ``ObjectStore(directory=...)``);
* ``zip://PATH``  — :class:`CompressedFilesystemBackend`, one
  zlib-compressed pickle per object.

Backends deliberately know nothing about full objects, deltas or chains —
they store opaque values under string keys.  All versioning semantics stay
in :mod:`repro.storage.objects`.
"""

from __future__ import annotations

import abc
import os
import pickle
import zlib
from typing import Any, Iterator

from ..exceptions import RepositoryError

__all__ = [
    "StorageBackend",
    "MemoryBackend",
    "FilesystemBackend",
    "CompressedFilesystemBackend",
    "BackendSpecError",
    "open_backend",
]


class BackendSpecError(RepositoryError, ValueError):
    """A backend spec string could not be understood."""


class StorageBackend(abc.ABC):
    """A keyed blob store: the minimal surface the object store needs.

    Keys are content digests (hex strings); values are arbitrary picklable
    objects.  ``get`` raises :class:`KeyError` for absent keys so the object
    store can translate it into its own
    :class:`~repro.exceptions.ObjectNotFoundError`.
    """

    #: URI scheme this backend answers to in :func:`open_backend`.
    scheme: str = ""

    @abc.abstractmethod
    def put(self, key: str, value: Any) -> None:
        """Store ``value`` under ``key`` (overwriting silently)."""

    @abc.abstractmethod
    def get(self, key: str) -> Any:
        """Return the value stored under ``key``; raise ``KeyError`` if absent."""

    @abc.abstractmethod
    def delete(self, key: str) -> None:
        """Remove ``key`` (no error when absent)."""

    @abc.abstractmethod
    def keys(self) -> Iterator[str]:
        """Iterate over every stored key (order unspecified)."""

    def __contains__(self, key: str) -> bool:
        try:
            self.get(key)
        except KeyError:
            return False
        return True

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def spec(self) -> str:
        """The URI spec that would reopen this backend."""
        return f"{self.scheme}://"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.spec()!r} objects={len(self)}>"


class MemoryBackend(StorageBackend):
    """Objects held in a plain dict — fastest, lost on process exit."""

    scheme = "memory"

    def __init__(self) -> None:
        self._values: dict[str, Any] = {}

    def put(self, key: str, value: Any) -> None:
        self._values[key] = value

    def get(self, key: str) -> Any:
        return self._values[key]

    def delete(self, key: str) -> None:
        self._values.pop(key, None)

    def keys(self) -> Iterator[str]:
        return iter(list(self._values))

    def __contains__(self, key: str) -> bool:
        return key in self._values

    def __len__(self) -> int:
        return len(self._values)


class FilesystemBackend(StorageBackend):
    """One pickle file per object under a directory.

    Uses the ``<key>.obj`` layout of the historical directory-backed
    ``ObjectStore``, so repositories written before the backend split keep
    loading unchanged.
    """

    scheme = "file"
    extension = ".obj"

    def __init__(self, directory: str) -> None:
        if not directory:
            raise BackendSpecError(f"{self.scheme}:// backend requires a path")
        self.directory = directory
        os.makedirs(directory, exist_ok=True)

    # -- serialization hooks (overridden by the compressed variant) ------ #
    def _encode(self, value: Any) -> bytes:
        return pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)

    def _decode(self, data: bytes) -> Any:
        return pickle.loads(data)

    # -- StorageBackend ------------------------------------------------- #
    def put(self, key: str, value: Any) -> None:
        with open(self._path(key), "wb") as handle:
            handle.write(self._encode(value))

    def get(self, key: str) -> Any:
        try:
            with open(self._path(key), "rb") as handle:
                data = handle.read()
        except FileNotFoundError:
            raise KeyError(key) from None
        return self._decode(data)

    def delete(self, key: str) -> None:
        try:
            os.remove(self._path(key))
        except (FileNotFoundError, KeyError):
            pass

    def keys(self) -> Iterator[str]:
        for name in os.listdir(self.directory):
            if name.endswith(self.extension):
                yield name[: -len(self.extension)]

    def __contains__(self, key: str) -> bool:
        try:
            path = self._path(key)
        except KeyError:
            # A key this backend could never store simply isn't present —
            # matching MemoryBackend's `in` contract for malformed keys.
            return False
        return os.path.exists(path)

    def spec(self) -> str:
        return f"{self.scheme}://{self.directory}"

    def _path(self, key: str) -> str:
        # Keys are hex digests; refuse anything that could escape the
        # directory (a corrupted state file must not become a traversal).
        if not key or os.sep in key or key.startswith("."):
            raise KeyError(key)
        return os.path.join(self.directory, key + self.extension)


class CompressedFilesystemBackend(FilesystemBackend):
    """Like :class:`FilesystemBackend` but zlib-compresses every object.

    Trades CPU on reads/writes for disk — the right default for cold
    archives of text-like payloads, which compress by an order of magnitude.
    """

    scheme = "zip"
    extension = ".objz"

    def __init__(self, directory: str, *, level: int = 6) -> None:
        super().__init__(directory)
        self.level = int(level)

    def _encode(self, value: Any) -> bytes:
        return zlib.compress(pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL), self.level)

    def _decode(self, data: bytes) -> Any:
        return pickle.loads(zlib.decompress(data))


_BACKENDS: dict[str, type[StorageBackend]] = {
    MemoryBackend.scheme: MemoryBackend,
    FilesystemBackend.scheme: FilesystemBackend,
    CompressedFilesystemBackend.scheme: CompressedFilesystemBackend,
}


def open_backend(spec: str | StorageBackend | None) -> StorageBackend:
    """Open a storage backend from a URI-style spec.

    * ``None`` — a fresh :class:`MemoryBackend`;
    * an existing :class:`StorageBackend` — returned unchanged;
    * ``"memory://"`` — a fresh :class:`MemoryBackend`;
    * ``"file://PATH"`` — a :class:`FilesystemBackend` rooted at ``PATH``;
    * ``"zip://PATH"`` — a :class:`CompressedFilesystemBackend` at ``PATH``;
    * a bare path — treated as ``file://PATH`` for convenience.
    """
    if spec is None:
        return MemoryBackend()
    if isinstance(spec, StorageBackend):
        return spec
    if not isinstance(spec, str):
        raise BackendSpecError(f"backend spec must be a string, got {type(spec).__name__}")
    if "://" not in spec:
        return FilesystemBackend(spec)
    scheme, _, path = spec.partition("://")
    try:
        backend_cls = _BACKENDS[scheme]
    except KeyError:
        known = ", ".join(sorted(_BACKENDS))
        raise BackendSpecError(
            f"unknown storage backend scheme {scheme!r} (known: {known})"
        ) from None
    if backend_cls is MemoryBackend:
        if path:
            raise BackendSpecError("memory:// backend does not take a path")
        return MemoryBackend()
    return backend_cls(path)
