"""Pluggable storage backends for the object store.

The object store used to be hard-wired to "a dict, optionally mirrored to a
directory of pickles".  Serving the paper's workloads at scale needs the
bytes to live in different places (RAM for tests and hot caches, plain files
for durability, compressed files for cold archives), so the *where* is now a
:class:`StorageBackend` — a minimal keyed blob interface the object store
delegates to.

Five implementations are selectable with a URI-style spec understood by
:func:`open_backend`:

* ``memory://``   — :class:`MemoryBackend`, objects held in a dict;
* ``file://PATH`` — :class:`FilesystemBackend`, one pickle file per object
  (the on-disk layout of the historical ``ObjectStore(directory=...)``);
* ``zip://PATH``  — :class:`CompressedFilesystemBackend`, one
  zlib-compressed pickle per object;
* ``shard://N/CHILDSPEC`` — :class:`ShardedBackend`, keys routed across
  ``N`` child backends by key hash (``shard://4/file:///data/objects``
  opens four ``FilesystemBackend`` shards under ``/data/objects``);
* ``http://HOST:PORT`` — a remote object store served by another repro
  process running ``repro serve`` (provided by
  :mod:`repro.server.remote`, registered lazily on first use);
* ``sqlite://PATH`` — objects *and* the transactional metadata catalog in
  one SQLite database (provided by :mod:`repro.storage.catalog`,
  registered lazily on first use) — the backend that lets several
  processes share one store.

Backends deliberately know nothing about full objects, deltas or chains —
they store opaque values under string keys.  All versioning semantics stay
in :mod:`repro.storage.objects`.
"""

from __future__ import annotations

import abc
import hashlib
import importlib
import os
import pickle
import threading
import zlib
from typing import Any, Iterator, Sequence

from ..exceptions import RepositoryError

__all__ = [
    "StorageBackend",
    "MemoryBackend",
    "FilesystemBackend",
    "CompressedFilesystemBackend",
    "ShardedBackend",
    "BackendSpecError",
    "open_backend",
    "register_backend",
]


class BackendSpecError(RepositoryError, ValueError):
    """A backend spec string could not be understood."""


class StorageBackend(abc.ABC):
    """A keyed blob store: the minimal surface the object store needs.

    Keys are content digests (hex strings); values are arbitrary picklable
    objects.  ``get`` raises :class:`KeyError` for absent keys so the object
    store can translate it into its own
    :class:`~repro.exceptions.ObjectNotFoundError`.
    """

    #: URI scheme this backend answers to in :func:`open_backend`.
    scheme: str = ""

    @abc.abstractmethod
    def put(self, key: str, value: Any) -> None:
        """Store ``value`` under ``key`` (overwriting silently)."""

    @abc.abstractmethod
    def get(self, key: str) -> Any:
        """Return the value stored under ``key``; raise ``KeyError`` if absent."""

    @abc.abstractmethod
    def delete(self, key: str) -> None:
        """Remove ``key`` (no error when absent)."""

    @abc.abstractmethod
    def keys(self) -> Iterator[str]:
        """Iterate over every stored key (order unspecified)."""

    def __contains__(self, key: str) -> bool:
        try:
            self.get(key)
        except KeyError:
            return False
        return True

    def get_many(self, keys: Sequence[str]) -> dict[str, Any]:
        """Fetch several keys at once; absent keys are omitted, not errors.

        The default loops over :meth:`get`; network-backed implementations
        override it with a single batched exchange.
        """
        found: dict[str, Any] = {}
        for key in keys:
            try:
                found[key] = self.get(key)
            except KeyError:
                continue
        return found

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def spec(self) -> str:
        """The URI spec that would reopen this backend."""
        return f"{self.scheme}://"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.spec()!r} objects={len(self)}>"


class MemoryBackend(StorageBackend):
    """Objects held in a plain dict — fastest, lost on process exit."""

    scheme = "memory"

    def __init__(self) -> None:
        self._values: dict[str, Any] = {}

    def put(self, key: str, value: Any) -> None:
        self._values[key] = value

    def get(self, key: str) -> Any:
        return self._values[key]

    def delete(self, key: str) -> None:
        self._values.pop(key, None)

    def keys(self) -> Iterator[str]:
        return iter(list(self._values))

    def __contains__(self, key: str) -> bool:
        return key in self._values

    def __len__(self) -> int:
        return len(self._values)


class FilesystemBackend(StorageBackend):
    """One pickle file per object under a directory.

    Uses the ``<key>.obj`` layout of the historical directory-backed
    ``ObjectStore``, so repositories written before the backend split keep
    loading unchanged.
    """

    scheme = "file"
    extension = ".obj"

    def __init__(self, directory: str, *, durable: bool = False) -> None:
        if not directory:
            raise BackendSpecError(f"{self.scheme}:// backend requires a path")
        self.directory = directory
        # durable=True fsyncs every put (file and directory).  Without it a
        # power loss after os.replace can still lose the object: the rename
        # is atomic in the namespace but neither the data nor the directory
        # entry is guaranteed on disk.  Off by default — tests and throwaway
        # stores should not pay two fsyncs per object.
        self.durable = bool(durable)
        os.makedirs(directory, exist_ok=True)

    # -- serialization hooks (overridden by the compressed variant) ------ #
    def _encode(self, value: Any) -> bytes:
        return pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)

    def _decode(self, data: bytes) -> Any:
        return pickle.loads(data)

    # -- StorageBackend ------------------------------------------------- #
    def put(self, key: str, value: Any) -> None:
        # Write-then-rename: a concurrent reader of the same key (e.g. a
        # checkout racing a peer's /objects PUT, or any future writer that
        # bypasses the object store's existence check) sees either the old
        # complete file or the new complete file, never a truncated one.
        path = self._path(key)
        tmp_path = f"{path}.tmp-{os.getpid()}-{threading.get_ident()}"
        with open(tmp_path, "wb") as handle:
            handle.write(self._encode(value))
            if self.durable:
                handle.flush()
                os.fsync(handle.fileno())
        os.replace(tmp_path, path)
        if self.durable:
            self._fsync_directory()

    def _fsync_directory(self) -> None:
        # The rename itself lives in the directory entry; without this
        # fsync the entry may never reach disk even though the data did.
        fd = os.open(self.directory, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def get(self, key: str) -> Any:
        try:
            with open(self._path(key), "rb") as handle:
                data = handle.read()
        except FileNotFoundError:
            raise KeyError(key) from None
        return self._decode(data)

    def delete(self, key: str) -> None:
        try:
            os.remove(self._path(key))
        except (FileNotFoundError, KeyError):
            pass

    def keys(self) -> Iterator[str]:
        for name in os.listdir(self.directory):
            if name.endswith(self.extension):
                yield name[: -len(self.extension)]

    def __contains__(self, key: str) -> bool:
        try:
            path = self._path(key)
        except KeyError:
            # A key this backend could never store simply isn't present —
            # matching MemoryBackend's `in` contract for malformed keys.
            return False
        return os.path.exists(path)

    def spec(self) -> str:
        return f"{self.scheme}://{self.directory}"

    def _path(self, key: str) -> str:
        # Keys are hex digests; refuse anything that could escape the
        # directory (a corrupted state file must not become a traversal).
        if not key or os.sep in key or key.startswith("."):
            raise KeyError(key)
        return os.path.join(self.directory, key + self.extension)


class CompressedFilesystemBackend(FilesystemBackend):
    """Like :class:`FilesystemBackend` but zlib-compresses every object.

    Trades CPU on reads/writes for disk — the right default for cold
    archives of text-like payloads, which compress by an order of magnitude.
    """

    scheme = "zip"
    extension = ".objz"

    def __init__(self, directory: str, *, level: int = 6) -> None:
        super().__init__(directory)
        self.level = int(level)

    def _encode(self, value: Any) -> bytes:
        return zlib.compress(pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL), self.level)

    def _decode(self, data: bytes) -> Any:
        return pickle.loads(zlib.decompress(data))


class ShardedBackend(StorageBackend):
    """Keys routed across N child backends by a stable hash of the key.

    The shard of a key is derived from a SHA-256 of the key itself (not
    Python's salted ``hash``), so the same key always lands on the same
    shard across processes and restarts — a prerequisite for pointing
    several serving processes at one sharded store.

    ``open_backend`` understands ``shard://N/CHILDSPEC``: ``N`` child
    backends are opened from ``CHILDSPEC``, with ``shard-XX`` appended to
    path-carrying child specs (``shard://4/zip:///data/objects`` creates
    ``/data/objects/shard-00`` … ``shard-03``) and pathless specs opened
    fresh per shard (``shard://8/memory://`` is eight independent dicts).
    """

    scheme = "shard"

    def __init__(
        self, shards: Sequence[StorageBackend], *, spec_path: str | None = None
    ) -> None:
        shards = list(shards)
        if not shards:
            raise BackendSpecError("shard:// backend requires at least one shard")
        self.shards = shards
        self._spec_path = spec_path

    @classmethod
    def from_spec(cls, path: str) -> "ShardedBackend":
        """Open ``shard://N/CHILDSPEC`` (the part after ``shard://``)."""
        count_text, sep, child_spec = path.partition("/")
        try:
            count = int(count_text)
        except ValueError:
            count = 0
        if not sep or not child_spec or count < 1:
            raise BackendSpecError(
                f"shard spec must look like shard://N/CHILDSPEC with N >= 1, "
                f"got {('shard://' + path)!r}"
            )
        if "://" not in child_spec:
            child_spec = f"file://{child_spec}"
        child_scheme, _, child_path = child_spec.partition("://")
        if child_scheme == cls.scheme:
            raise BackendSpecError("shard:// children cannot themselves be shard://")
        if child_scheme in ("http", "https"):
            # A remote server exposes one /objects namespace, not one per
            # shard; appending shard suffixes would produce URLs it never
            # serves.  Shard on the serving side instead (point the server's
            # own repository at a shard:// backend).
            raise BackendSpecError(
                "http(s):// children cannot be sharded client-side; run the "
                "remote server itself on a shard:// backend"
            )
        shards = []
        for index in range(count):
            if child_path:
                shards.append(
                    open_backend(f"{child_scheme}://{child_path}/shard-{index:02d}")
                )
            else:
                shards.append(open_backend(f"{child_scheme}://"))
        return cls(shards, spec_path=path)

    def shard_for(self, key: str) -> int:
        """Index of the shard responsible for ``key`` (stable across runs)."""
        digest = hashlib.sha256(key.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big") % len(self.shards)

    def put(self, key: str, value: Any) -> None:
        self.shards[self.shard_for(key)].put(key, value)

    def get(self, key: str) -> Any:
        return self.shards[self.shard_for(key)].get(key)

    def delete(self, key: str) -> None:
        self.shards[self.shard_for(key)].delete(key)

    def keys(self) -> Iterator[str]:
        for shard in self.shards:
            yield from shard.keys()

    def __contains__(self, key: str) -> bool:
        return key in self.shards[self.shard_for(key)]

    def __len__(self) -> int:
        return sum(len(shard) for shard in self.shards)

    def spec(self) -> str:
        if self._spec_path is not None:
            return f"{self.scheme}://{self._spec_path}"
        children = ",".join(shard.spec() for shard in self.shards)
        return f"{self.scheme}://[{children}]"


_BACKENDS: dict[str, type[StorageBackend]] = {
    MemoryBackend.scheme: MemoryBackend,
    FilesystemBackend.scheme: FilesystemBackend,
    CompressedFilesystemBackend.scheme: CompressedFilesystemBackend,
    ShardedBackend.scheme: ShardedBackend,
}

# Schemes provided by modules that must not be imported eagerly (the server
# package imports the storage layer, so registering its RemoteBackend here
# would be a cycle).  open_backend imports the module on first use, whose
# import-time register_backend() call fills _BACKENDS.
_LAZY_BACKEND_MODULES: dict[str, str] = {
    "http": "repro.server.remote",
    "https": "repro.server.remote",
    "sqlite": "repro.storage.catalog",
}


def register_backend(backend_cls: type[StorageBackend]) -> None:
    """Register ``backend_cls`` under its ``scheme`` for :func:`open_backend`."""
    if not backend_cls.scheme:
        raise BackendSpecError(f"{backend_cls.__name__} declares no scheme")
    _BACKENDS[backend_cls.scheme] = backend_cls


def open_backend(spec: str | StorageBackend | None) -> StorageBackend:
    """Open a storage backend from a URI-style spec.

    * ``None`` — a fresh :class:`MemoryBackend`;
    * an existing :class:`StorageBackend` — returned unchanged;
    * ``"memory://"`` — a fresh :class:`MemoryBackend`;
    * ``"file://PATH"`` — a :class:`FilesystemBackend` rooted at ``PATH``;
    * ``"zip://PATH"`` — a :class:`CompressedFilesystemBackend` at ``PATH``;
    * ``"shard://N/CHILDSPEC"`` — a :class:`ShardedBackend` over N children;
    * ``"http://HOST:PORT"`` — a ``RemoteBackend`` speaking to another repro
      process's object-store endpoints (see :mod:`repro.server`);
    * ``"sqlite://PATH"`` — a ``SQLiteBackend`` whose database also carries
      the metadata catalog (see :mod:`repro.storage.catalog`);
    * a bare path — treated as ``file://PATH`` for convenience.
    """
    if spec is None:
        return MemoryBackend()
    if isinstance(spec, StorageBackend):
        return spec
    if not isinstance(spec, str):
        raise BackendSpecError(f"backend spec must be a string, got {type(spec).__name__}")
    if "://" not in spec:
        return FilesystemBackend(spec)
    scheme, _, path = spec.partition("://")
    if scheme not in _BACKENDS and scheme in _LAZY_BACKEND_MODULES:
        importlib.import_module(_LAZY_BACKEND_MODULES[scheme])
    try:
        backend_cls = _BACKENDS[scheme]
    except KeyError:
        known = ", ".join(sorted(set(_BACKENDS) | set(_LAZY_BACKEND_MODULES)))
        raise BackendSpecError(
            f"unknown storage backend scheme {scheme!r} (known: {known})"
        ) from None
    if backend_cls is MemoryBackend:
        if path:
            raise BackendSpecError("memory:// backend does not take a path")
        return MemoryBackend()
    from_spec = getattr(backend_cls, "from_spec", None)
    if from_spec is not None:
        return from_spec(path)
    return backend_cls(path)
