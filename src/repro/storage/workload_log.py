"""A persistent log of per-version access frequencies.

The paper's workload-aware problems (Figure 16) optimize the storage plan
against *observed* access frequencies, but a serving process that forgets
its request counters on restart can never feed them real traffic.
:class:`WorkloadLog` closes that gap: every served checkout is folded into
an in-memory counter *and* appended to a small append-only file inside the
repository, so the observed workload survives restarts and can be handed
to the optimizers (:meth:`frequencies` produces exactly the
``access_frequencies`` mapping a
:class:`~repro.core.instance.ProblemInstance` consumes).

Next to the raw all-time counts the log maintains a **decaying view**: an
exponentially-weighted count per version with a configurable *half-life*
measured in accesses (after ``half_life`` further requests, an old access
counts half).  Raw counts answer "what was ever popular"; decayed weights
answer "what is popular *now*" — the view a repacker should optimize for
when the workload drifts (:meth:`decayed_frequencies`).  The clock is the
total access count, not wall time, so the view is deterministic and
testable.

Design notes:

* The on-disk format is one JSON array ``[version_id, count]`` per line
  (compacted lines carry a third element, the decayed weight at compaction
  time, so the decaying view survives restarts too).  Appends are tiny and
  self-delimiting, so a crash mid-write loses at most the final line —
  :meth:`_load` tolerates (and drops) a torn tail instead of refusing to
  start.
* The file is compacted automatically once it holds many more lines than
  distinct versions (every version's total collapses to one line), keeping
  replay-on-start O(distinct versions) for long-lived servers.  Compaction
  collapses the event *ordering*, so the reloaded decayed view treats the
  compacted history as one point mass — an approximation that only affects
  history already at least one compaction old.  The seeded weights carry
  the half-life they were maintained under: replaying a compacted file
  with a *different* half-life (``decayed_frequencies(half_life=N)``,
  ``repro repack --half-life N``) rescales only post-compaction events
  exactly; the pre-compaction mass keeps its original scale.
* All operations are thread-safe behind one internal lock; the serving
  layer calls :meth:`record` from request threads directly.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Iterable, Mapping, Sequence

from ..core.version import VersionID

__all__ = ["WorkloadLog", "DEFAULT_HALF_LIFE", "frequency_drift"]

#: Compact once the file holds this many times more lines than distinct
#: versions (and at least ``_COMPACT_MIN_LINES`` lines overall).
_COMPACT_FACTOR = 8
_COMPACT_MIN_LINES = 256

#: Default half-life of the decaying view, in accesses.
DEFAULT_HALF_LIFE = 256.0


def _decay(weight: float, elapsed: float, half_life: float) -> float:
    """``weight`` after ``elapsed`` accesses under ``half_life`` decay.

    The single definition of the decay model — the live fold, snapshots
    and file replay must all age weights identically or the views drift.
    """
    return weight * 0.5 ** (elapsed / half_life)


def frequency_drift(
    current: Mapping[VersionID, float], reference: Mapping[VersionID, float]
) -> float:
    """How far two access-frequency vectors have drifted apart, in [0, 1].

    Both vectors are normalized to probability distributions and compared
    by total variation distance (half the L1 distance): 0 means identical
    popularity *shape* regardless of volume, 1 means disjoint hot sets.
    This is the trend signal the adaptive repack controller re-arms on —
    a stood-down "not worth repacking" verdict was judged against one
    workload shape and expires when the live decayed view no longer
    resembles it.  An empty vector against a non-empty one is maximal
    drift; two empty vectors are identical.
    """
    current_total = sum(weight for weight in current.values() if weight > 0)
    reference_total = sum(weight for weight in reference.values() if weight > 0)
    if current_total <= 0 and reference_total <= 0:
        return 0.0
    if current_total <= 0 or reference_total <= 0:
        return 1.0
    distance = 0.0
    for vid in set(current) | set(reference):
        share_now = max(current.get(vid, 0.0), 0.0) / current_total
        share_ref = max(reference.get(vid, 0.0), 0.0) / reference_total
        distance += abs(share_now - share_ref)
    return distance / 2.0


class WorkloadLog:
    """Append-only, restart-surviving record of per-version access counts.

    ``path=None`` keeps the log purely in memory (used by tests and
    embedded services); with a path, counts recorded by a previous process
    are replayed on construction and every new access is appended.
    ``half_life`` configures the decaying view (in accesses).
    """

    def __init__(
        self, path: str | None = None, *, half_life: float = DEFAULT_HALF_LIFE
    ) -> None:
        if half_life <= 0:
            raise ValueError("half_life must be positive (accesses)")
        self.path = path
        self.half_life = float(half_life)
        self._lock = threading.Lock()
        self._counts: dict[VersionID, int] = {}
        # Decaying view: version -> (weight, tick of last update); weights
        # decay lazily by 0.5 ** (elapsed_accesses / half_life).
        self._decayed: dict[VersionID, tuple[float, int]] = {}
        self._total = 0
        self._file_lines = 0
        self._needs_newline = False
        if path is not None and os.path.exists(path):
            self._load()

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #
    def record(self, version_id: VersionID, count: int = 1) -> None:
        """Fold ``count`` accesses of ``version_id`` into the log."""
        if count <= 0:
            raise ValueError("access count must be positive")
        with self._lock:
            self._fold_locked(version_id, count)
            self._append_locked([(version_id, count)])

    def record_many(self, version_ids: Iterable[VersionID]) -> None:
        """Record one access per id (one file append for the whole batch)."""
        entries: dict[VersionID, int] = {}
        for vid in version_ids:
            entries[vid] = entries.get(vid, 0) + 1
        if not entries:
            return
        with self._lock:
            for vid, count in entries.items():
                self._fold_locked(vid, count)
            self._append_locked(entries.items())

    def _fold_locked(self, version_id: VersionID, count: int) -> None:
        """Advance counts, the decayed view and the access clock by one event.

        Events are stamped with the *post*-increment clock, so an access
        never decays against itself: a version touched by the most recent
        request carries its full weight.
        """
        self._counts[version_id] = self._counts.get(version_id, 0) + count
        self._total += count
        tick = self._total
        weight, last = self._decayed.get(version_id, (0.0, tick))
        weight = _decay(weight, tick - last, self.half_life) + count
        self._decayed[version_id] = (weight, tick)

    # ------------------------------------------------------------------ #
    # reading
    # ------------------------------------------------------------------ #
    def counts(self) -> dict[VersionID, int]:
        """Snapshot of the per-version access counts."""
        with self._lock:
            return dict(self._counts)

    def decayed_counts(self) -> dict[VersionID, float]:
        """Snapshot of the decaying view, decayed to the current clock."""
        with self._lock:
            return self._decayed_snapshot_locked()

    def _decayed_snapshot_locked(self) -> dict[VersionID, float]:
        now = self._total
        return {
            vid: _decay(weight, now - last, self.half_life)
            for vid, (weight, last) in self._decayed.items()
        }

    @property
    def total_accesses(self) -> int:
        """Total number of recorded accesses."""
        with self._lock:
            return self._total

    def __len__(self) -> int:
        """Number of distinct versions ever accessed."""
        with self._lock:
            return len(self._counts)

    def frequencies(
        self,
        version_ids: Sequence[VersionID] | None = None,
        *,
        smoothing: float = 0.0,
    ) -> dict[VersionID, float]:
        """The logged workload as an access-frequency vector (raw counts).

        With ``version_ids`` the vector covers exactly those versions:
        logged counts for other (e.g. deleted) versions are dropped and
        never-accessed versions receive ``smoothing`` (default 0, i.e. the
        optimizer treats them as free to park on long chains).  Returns an
        empty mapping when nothing relevant was ever logged — callers
        should fall back to a uniform workload in that case.
        """
        with self._lock:
            counts = dict(self._counts)
        return self._vector({vid: float(c) for vid, c in counts.items()},
                            version_ids, smoothing)

    def decayed_frequencies(
        self,
        version_ids: Sequence[VersionID] | None = None,
        *,
        half_life: float | None = None,
        smoothing: float = 0.0,
    ) -> dict[VersionID, float]:
        """The logged workload as a *decaying* frequency vector.

        Recent accesses dominate: after ``half_life`` further requests an
        access contributes half its original weight, so a repacker planning
        against this vector tracks the drifting workload instead of
        all-time popularity.  ``half_life`` defaults to the log's
        configured one; a *different* half-life is recomputed by replaying
        the on-disk log (file-backed logs only — an in-memory log keeps no
        event order to replay).  Compacted history replays approximately:
        its seeded weights keep the scale of the half-life they were
        maintained under (see the module notes), while every
        post-compaction event is rescaled exactly.
        """
        if half_life is not None and half_life <= 0:
            raise ValueError("half_life must be positive (accesses)")
        if half_life is None or half_life == self.half_life:
            with self._lock:
                weights = self._decayed_snapshot_locked()
        elif self.path is not None:
            # Deliberately outside the lock: the whole-file replay may be
            # long, and request threads append under the same lock — the
            # write-then-rename compaction makes a snapshot read safe.
            if os.path.exists(self.path):
                _, decayed, total, _, _ = self._parse_file(half_life)
                weights = {
                    vid: _decay(weight, total - last, half_life)
                    for vid, (weight, last) in decayed.items()
                }
            else:
                weights = {}  # file-backed but nothing ever logged
        else:
            raise ValueError(
                "an in-memory workload log cannot recompute a different "
                "half-life; construct it with the one you need"
            )
        return self._vector(weights, version_ids, smoothing)

    @staticmethod
    def _vector(
        weights: dict[VersionID, float],
        version_ids: Sequence[VersionID] | None,
        smoothing: float,
    ) -> dict[VersionID, float]:
        if version_ids is None:
            return weights
        vector = {vid: weights.get(vid, 0.0) + smoothing for vid in version_ids}
        if not any(vector.values()):
            return {}
        return vector

    def snapshot(self) -> dict[str, object]:
        """JSON-ready summary for the service's ``stats`` endpoint."""
        with self._lock:
            return {
                "path": self.path,
                "total_accesses": self._total,
                "distinct_versions": len(self._counts),
                "half_life": self.half_life,
                "decayed_total": float(
                    sum(self._decayed_snapshot_locked().values())
                ),
            }

    # ------------------------------------------------------------------ #
    # maintenance
    # ------------------------------------------------------------------ #
    def clear(self) -> None:
        """Forget every recorded access (and truncate the file)."""
        with self._lock:
            self._counts.clear()
            self._decayed.clear()
            self._total = 0
            self._file_lines = 0
            self._needs_newline = False
            if self.path is not None and os.path.exists(self.path):
                with open(self.path, "w", encoding="utf-8"):
                    pass

    def compact(self) -> None:
        """Rewrite the file as one line per version (totals unchanged)."""
        with self._lock:
            self._compact_locked()

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _load(self) -> None:
        counts, decayed, total, lines, torn = self._parse_file()
        self._counts = counts
        self._decayed = decayed
        self._total = total
        self._file_lines = lines
        # A file not ending in a newline carries a torn tail from a crash
        # mid-append: the broken line is dropped, and the next append must
        # start on a fresh line instead of gluing onto the fragment.
        self._needs_newline = torn

    def _parse_file(
        self, half_life: float | None = None
    ) -> tuple[
        dict[VersionID, int], dict[VersionID, tuple[float, int]], int, int, bool
    ]:
        """Replay the on-disk log: counts, decayed view, total, lines, torn."""
        half_life = half_life if half_life is not None else self.half_life
        with open(self.path, "r", encoding="utf-8") as handle:  # type: ignore[arg-type]
            raw = handle.read()
        counts: dict[VersionID, int] = {}
        decayed: dict[VersionID, tuple[float, int]] = {}
        total = 0
        lines = 0
        # Compacted (3-element) lines form the leading block of the file and
        # all carry weights snapshotted at one instant — the end of that
        # block.  Collect them and stamp them together once the block ends,
        # so replay does not re-decay history the seed already discounted.
        pending_seeds: dict[VersionID, float] = {}
        in_seeded_block = True
        for line in raw.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
                vid, count = entry[0], int(entry[1])
                seed = float(entry[2]) if len(entry) > 2 else None
            except (ValueError, TypeError, IndexError, KeyError):
                # A torn tail from a crash mid-append: drop it rather
                # than refusing to start; at most one access is lost.
                continue
            if count <= 0:
                continue
            counts[vid] = counts.get(vid, 0) + count
            total += count
            lines += 1
            if seed is not None and in_seeded_block:
                pending_seeds[vid] = pending_seeds.get(vid, 0.0) + seed
                continue
            if in_seeded_block:
                in_seeded_block = False
                for seeded_vid, weight in pending_seeds.items():
                    decayed[seeded_vid] = (weight, total - count)
                pending_seeds = {}
            tick = total
            weight, last = decayed.get(vid, (0.0, tick))
            weight = _decay(weight, tick - last, half_life)
            weight += count if seed is None else seed
            decayed[vid] = (weight, tick)
        for seeded_vid, weight in pending_seeds.items():
            decayed[seeded_vid] = (weight, total)
        return counts, decayed, total, lines, bool(raw) and not raw.endswith("\n")

    def _append_locked(self, entries: Iterable[tuple[VersionID, int]]) -> None:
        if self.path is None:
            return
        lines = [json.dumps([vid, count]) for vid, count in entries]
        prefix = "\n" if self._needs_newline else ""
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(prefix + "\n".join(lines) + "\n")
        self._needs_newline = False
        self._file_lines += len(lines)
        if self._file_lines >= _COMPACT_MIN_LINES and self._file_lines > (
            _COMPACT_FACTOR * max(1, len(self._counts))
        ):
            self._compact_locked()

    def _compact_locked(self) -> None:
        if self.path is None:
            return
        # Compact from the *file*, not from this process's counters: other
        # processes (CLI one-shots next to a running server) append to the
        # same log, and everything this process ever recorded is already on
        # disk too — so the file is the superset.  Adopt the merged totals
        # as the new in-memory state, then write-then-rename so a crash
        # mid-compaction leaves the old file (or the complete new one) —
        # never a half-written log.  Each compacted line carries the
        # decayed weight at compaction time as a third element, seeding the
        # decaying view of the next load.
        if os.path.exists(self.path):
            counts, decayed, total, _, _ = self._parse_file()
            self._counts = counts
            self._decayed = decayed
            self._total = total
        snapshot = self._decayed_snapshot_locked()
        tmp_path = self.path + ".tmp"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            # Weights are carried at full float precision: json round-trips
            # floats exactly, and rounding here compounds across repeated
            # compactions into a real drift of the decayed view.
            for vid, count in self._counts.items():
                handle.write(
                    json.dumps([vid, count, snapshot.get(vid, 0.0)]) + "\n"
                )
            handle.flush()
            os.fsync(handle.fileno())
        # fsync the tmp file *before* os.replace: the rename must never
        # become visible pointing at data the disk has not seen — that is
        # the one ordering a crash can turn into an empty (truncated) log.
        os.replace(tmp_path, self.path)
        self._file_lines = len(self._counts)
        self._needs_newline = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<WorkloadLog path={self.path!r} accesses={self._total} "
            f"versions={len(self._counts)} half_life={self.half_life}>"
        )
