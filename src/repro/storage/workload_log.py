"""A persistent log of per-version access frequencies.

The paper's workload-aware problems (Figure 16) optimize the storage plan
against *observed* access frequencies, but a serving process that forgets
its request counters on restart can never feed them real traffic.
:class:`WorkloadLog` closes that gap: every served checkout is folded into
an in-memory counter *and* appended to a small append-only file inside the
repository, so the observed workload survives restarts and can be handed
to the optimizers (:meth:`frequencies` produces exactly the
``access_frequencies`` mapping a
:class:`~repro.core.instance.ProblemInstance` consumes).

Design notes:

* The on-disk format is one JSON array ``[version_id, count]`` per line.
  Appends are tiny and self-delimiting, so a crash mid-write loses at most
  the final line — :meth:`_load` tolerates (and drops) a torn tail instead
  of refusing to start.
* The file is compacted automatically once it holds many more lines than
  distinct versions (every version's total collapses to one line), keeping
  replay-on-start O(distinct versions) for long-lived servers.
* All operations are thread-safe behind one internal lock; the serving
  layer calls :meth:`record` from request threads directly.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Iterable, Sequence

from ..core.version import VersionID

__all__ = ["WorkloadLog"]

#: Compact once the file holds this many times more lines than distinct
#: versions (and at least ``_COMPACT_MIN_LINES`` lines overall).
_COMPACT_FACTOR = 8
_COMPACT_MIN_LINES = 256


class WorkloadLog:
    """Append-only, restart-surviving record of per-version access counts.

    ``path=None`` keeps the log purely in memory (used by tests and
    embedded services); with a path, counts recorded by a previous process
    are replayed on construction and every new access is appended.
    """

    def __init__(self, path: str | None = None) -> None:
        self.path = path
        self._lock = threading.Lock()
        self._counts: dict[VersionID, int] = {}
        self._total = 0
        self._file_lines = 0
        self._needs_newline = False
        if path is not None and os.path.exists(path):
            self._load()

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #
    def record(self, version_id: VersionID, count: int = 1) -> None:
        """Fold ``count`` accesses of ``version_id`` into the log."""
        if count <= 0:
            raise ValueError("access count must be positive")
        with self._lock:
            self._counts[version_id] = self._counts.get(version_id, 0) + count
            self._total += count
            self._append_locked([(version_id, count)])

    def record_many(self, version_ids: Iterable[VersionID]) -> None:
        """Record one access per id (one file append for the whole batch)."""
        entries: dict[VersionID, int] = {}
        for vid in version_ids:
            entries[vid] = entries.get(vid, 0) + 1
        if not entries:
            return
        with self._lock:
            for vid, count in entries.items():
                self._counts[vid] = self._counts.get(vid, 0) + count
                self._total += count
            self._append_locked(entries.items())

    # ------------------------------------------------------------------ #
    # reading
    # ------------------------------------------------------------------ #
    def counts(self) -> dict[VersionID, int]:
        """Snapshot of the per-version access counts."""
        with self._lock:
            return dict(self._counts)

    @property
    def total_accesses(self) -> int:
        """Total number of recorded accesses."""
        with self._lock:
            return self._total

    def __len__(self) -> int:
        """Number of distinct versions ever accessed."""
        with self._lock:
            return len(self._counts)

    def frequencies(
        self,
        version_ids: Sequence[VersionID] | None = None,
        *,
        smoothing: float = 0.0,
    ) -> dict[VersionID, float]:
        """The logged workload as an access-frequency vector.

        With ``version_ids`` the vector covers exactly those versions:
        logged counts for other (e.g. deleted) versions are dropped and
        never-accessed versions receive ``smoothing`` (default 0, i.e. the
        optimizer treats them as free to park on long chains).  Returns an
        empty mapping when nothing relevant was ever logged — callers
        should fall back to a uniform workload in that case.
        """
        with self._lock:
            counts = dict(self._counts)
        if version_ids is None:
            return {vid: float(count) for vid, count in counts.items()}
        vector = {vid: float(counts.get(vid, 0)) + smoothing for vid in version_ids}
        if not any(vector.values()):
            return {}
        return vector

    def snapshot(self) -> dict[str, object]:
        """JSON-ready summary for the service's ``stats`` endpoint."""
        with self._lock:
            return {
                "path": self.path,
                "total_accesses": self._total,
                "distinct_versions": len(self._counts),
            }

    # ------------------------------------------------------------------ #
    # maintenance
    # ------------------------------------------------------------------ #
    def clear(self) -> None:
        """Forget every recorded access (and truncate the file)."""
        with self._lock:
            self._counts.clear()
            self._total = 0
            self._file_lines = 0
            self._needs_newline = False
            if self.path is not None and os.path.exists(self.path):
                with open(self.path, "w", encoding="utf-8"):
                    pass

    def compact(self) -> None:
        """Rewrite the file as one line per version (totals unchanged)."""
        with self._lock:
            self._compact_locked()

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _load(self) -> None:
        counts, total, lines, torn = self._parse_file()
        self._counts = counts
        self._total = total
        self._file_lines = lines
        # A file not ending in a newline carries a torn tail from a crash
        # mid-append: the broken line is dropped, and the next append must
        # start on a fresh line instead of gluing onto the fragment.
        self._needs_newline = torn

    def _parse_file(self) -> tuple[dict[VersionID, int], int, int, bool]:
        """Aggregate the on-disk log: ``(counts, total, lines, torn_tail)``."""
        with open(self.path, "r", encoding="utf-8") as handle:  # type: ignore[arg-type]
            raw = handle.read()
        counts: dict[VersionID, int] = {}
        total = 0
        lines = 0
        for line in raw.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                vid, count = json.loads(line)
                count = int(count)
            except (ValueError, TypeError):
                # A torn tail from a crash mid-append: drop it rather
                # than refusing to start; at most one access is lost.
                continue
            if count <= 0:
                continue
            counts[vid] = counts.get(vid, 0) + count
            total += count
            lines += 1
        return counts, total, lines, bool(raw) and not raw.endswith("\n")

    def _append_locked(self, entries: Iterable[tuple[VersionID, int]]) -> None:
        if self.path is None:
            return
        lines = [json.dumps([vid, count]) for vid, count in entries]
        prefix = "\n" if self._needs_newline else ""
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(prefix + "\n".join(lines) + "\n")
        self._needs_newline = False
        self._file_lines += len(lines)
        if self._file_lines >= _COMPACT_MIN_LINES and self._file_lines > (
            _COMPACT_FACTOR * max(1, len(self._counts))
        ):
            self._compact_locked()

    def _compact_locked(self) -> None:
        if self.path is None:
            return
        # Compact from the *file*, not from this process's counters: other
        # processes (CLI one-shots next to a running server) append to the
        # same log, and everything this process ever recorded is already on
        # disk too — so the file is the superset.  Adopt the merged totals
        # as the new in-memory state, then write-then-rename so a crash
        # mid-compaction leaves the old file (or the complete new one) —
        # never a half-written log.
        if os.path.exists(self.path):
            counts, total, _, _ = self._parse_file()
            self._counts = counts
            self._total = total
        tmp_path = self.path + ".tmp"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            for vid, count in self._counts.items():
                handle.write(json.dumps([vid, count]) + "\n")
        os.replace(tmp_path, self.path)
        self._file_lines = len(self._counts)
        self._needs_newline = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<WorkloadLog path={self.path!r} accesses={self._total} "
            f"versions={len(self._counts)}>"
        )
