"""Online repacking: re-encode a live repository and swap epochs atomically.

The optimization layer decides *which* versions to materialize and which
deltas to keep; this module carries that decision out against the object
store — including while the repository is being served.  The work is split
into two phases so a long re-encode never blocks readers:

* :meth:`OnlineRepacker.rebuild` (phase 1) streams every version's payload
  out of the *old* encoding through a bounded
  :class:`~repro.storage.batch.BatchMaterializer` cache and writes the new
  encoding next to it.  The store is content-addressed and existing keys
  are never overwritten, so concurrent readers — who only ever follow the
  old version→object mapping — are completely unaffected.
* :meth:`OnlineRepacker.swap` (phase 2) repoints every version at its new
  object, garbage-collects objects no chain references anymore, drops the
  repository's payload caches and bumps the *epoch* counter.  The caller
  must exclude concurrent readers and writers for this (short) phase; the
  serving layer does so under its serving lock, which is what guarantees a
  checkout is served entirely from one epoch — never a mix.

``rebuild`` + ``swap`` back :meth:`Repository.repack` (single-threaded
convenience via :meth:`repack`) as well as the serving layer's
workload-aware ``POST /repack``.  The streaming property — payloads are
read lazily, never all pinned in memory — is what lets the re-packer run
against repositories larger than RAM, exactly like the archival repacking
jobs surveyed in the paper's Section 6.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Mapping

from ..core.instance import ROOT
from ..core.problems import SolveResult, default_threshold, solve
from ..core.storage_plan import StoragePlan
from ..core.version import VersionID
from ..exceptions import (
    InvalidStoragePlanError,
    LeaseFencedError,
    ObjectNotFoundError,
    ReproError,
    SnapshotConflictError,
)
from .batch import BatchMaterializer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .repository import Repository

__all__ = [
    "OnlineRepacker",
    "StagedRepack",
    "AdaptiveRepackController",
    "StagingCostCalibration",
    "plan_order",
    "expected_workload_cost",
    "expected_workload_costs",
    "estimate_repack_cost",
]


def plan_order(plan: StoragePlan) -> list[VersionID]:
    """Versions of ``plan`` ordered parents-before-children.

    Materialized versions come first, then every delta child after its
    parent, so the re-packer can always diff against an already re-encoded
    base.
    """
    children = plan.children_map()
    order: list[VersionID] = []
    stack = list(reversed(children.get(ROOT, [])))
    while stack:
        node = stack.pop()
        order.append(node)
        stack.extend(reversed(children.get(node, [])))
    if len(order) != len(plan):
        raise InvalidStoragePlanError(
            "storage plan is not a tree rooted at the dummy vertex"
        )
    return order


def expected_workload_cost(
    repository: "Repository",
    frequencies: Mapping[VersionID, float] | None = None,
    *,
    materializer: BatchMaterializer | None = None,
) -> dict[str, Any]:
    """Expected recreation cost of serving ``frequencies``.

    Each version's cost is the Φ chain sum of its *current* encoding —
    answered by the object store's incremental cost index (maintained at
    commit/repack time), so no payload is replayed and no exclusive lock is
    needed — weighted by its access frequency (uniform when ``frequencies``
    is ``None``; zero-frequency versions are skipped entirely).  Returns
    the weighted ``total``, the ``per_request`` mean, and the total
    ``weight`` — the quantity an online repack is supposed to shrink,
    measurable before and after without replaying a single request.

    With ``materializer`` the result additionally carries a ``"warm"``
    sub-dict pricing the same workload against that materializer's *live
    cache*: ``total`` / ``per_request`` are the Σf·Φ each request will
    *actually* pay given what is currently cached (the suffix below the
    deepest cached ancestor, per chain), and ``deltas_per_request`` the
    delta applications it will perform.  With an empty cache the warm
    numbers equal the cold ones by construction.
    """
    return expected_workload_costs(
        repository, {"_": frequencies}, materializer=materializer
    )["_"]


def expected_workload_costs(
    repository: "Repository",
    vectors: Mapping[str, Mapping[VersionID, float] | None],
    *,
    materializer: BatchMaterializer | None = None,
) -> dict[str, dict[str, Any]]:
    """Price several frequency vectors in one pass over the versions.

    The per-version chain cost (and, with ``materializer``, its
    frequency-independent warm cost) is computed once and weighted under
    every vector — the serving stats price the raw and the decayed views
    of one workload without walking each chain twice.  ``None`` as a
    vector means the uniform workload, exactly like
    :func:`expected_workload_cost`.
    """
    store = repository.store
    accumulators = {
        name: {"total": 0.0, "weight": 0.0, "warm_total": 0.0, "warm_deltas": 0.0}
        for name in vectors
    }
    for vid in repository.graph.version_ids:
        object_id: str | None = None
        cost = 0.0
        warm = None
        for name, frequencies in vectors.items():
            freq = 1.0 if frequencies is None else float(frequencies.get(vid, 0.0))
            if freq <= 0.0:
                continue
            if object_id is None:
                object_id = repository.object_id_of(vid)
                cost = store.chain_stats(object_id).phi_total
                if materializer is not None:
                    warm = materializer.warm_chain_cost(object_id)
            accumulator = accumulators[name]
            accumulator["total"] += freq * cost
            accumulator["weight"] += freq
            if warm is not None:
                accumulator["warm_total"] += freq * warm.phi
                accumulator["warm_deltas"] += freq * warm.deltas
    priced: dict[str, dict[str, Any]] = {}
    for name, accumulator in accumulators.items():
        weight = accumulator["weight"]
        entry: dict[str, Any] = {
            "total": accumulator["total"],
            "per_request": accumulator["total"] / weight if weight > 0 else 0.0,
            "weight": weight,
        }
        if materializer is not None:
            entry["warm"] = {
                "total": accumulator["warm_total"],
                "per_request": (
                    accumulator["warm_total"] / weight if weight > 0 else 0.0
                ),
                "deltas_per_request": (
                    accumulator["warm_deltas"] / weight if weight > 0 else 0.0
                ),
            }
        priced[name] = entry
    return priced


def estimate_repack_cost(repository: "Repository") -> float:
    """Index-priced estimate of what one repack's staging phase costs.

    Phase 1 streams every version's payload out of the old encoding
    exactly once (the bounded cache amortizes shared prefixes), so the
    dominant recreation work is one Φ contribution per *distinct* live
    object.  Summing those from the cost index gives the number the
    adaptive controller amortizes against — a dictionary walk, no payload
    access, safe under shared access.
    """
    store = repository.store
    seen: set[str] = set()
    total = 0.0
    for vid in repository.graph.version_ids:
        for object_id in store.chain_ids(repository.object_id_of(vid)):
            if object_id in seen:
                continue
            seen.add(object_id)
            meta = store.meta(object_id)
            if meta is not None:
                total += meta.phi
    return total


class StagingCostCalibration:
    """Fits :func:`estimate_repack_cost` to what staging actually costs.

    The estimate prices phase 1 as one Φ contribution per distinct live
    object — a model that ignores the staging cache's prefix amortization
    and any backend latency.  Every completed repack reports the cost its
    rebuild *actually paid* (and the wall seconds it took); this object
    maintains an EWMA of the measured/estimated ratio and scales future
    estimates by it, so the amortization gate converges toward measured
    reality instead of judging against a fixed model.  Thread-safe; the
    state round-trips through the catalog like the controller's.
    """

    def __init__(
        self,
        *,
        alpha: float = 0.3,
        min_scale: float = 0.05,
        max_scale: float = 20.0,
    ) -> None:
        self.alpha = float(alpha)
        self.min_scale = float(min_scale)
        self.max_scale = float(max_scale)
        self._lock = threading.Lock()
        self.scale = 1.0
        self.observations = 0
        self.last_estimated: float | None = None
        self.last_measured: float | None = None
        self.last_seconds: float | None = None

    def observe(
        self,
        estimated: float,
        measured: float,
        *,
        seconds: float | None = None,
    ) -> None:
        """Fold one epoch's (estimated, actually-paid) staging cost pair."""
        estimated = float(estimated)
        measured = float(measured)
        with self._lock:
            self.last_estimated = estimated
            self.last_measured = measured
            self.last_seconds = float(seconds) if seconds is not None else None
            if estimated <= 0.0 or measured < 0.0:
                return
            ratio = min(self.max_scale, max(self.min_scale, measured / estimated))
            if self.observations == 0:
                self.scale = ratio
            else:
                self.scale += self.alpha * (ratio - self.scale)
            self.observations += 1

    def calibrated(self, estimate: float) -> float:
        """``estimate`` scaled by the fitted measured/estimated ratio."""
        with self._lock:
            return float(estimate) * self.scale

    def state_dict(self) -> dict[str, Any]:
        """JSON-serializable state, persisted in the catalog across restarts."""
        with self._lock:
            return {
                "scale": self.scale,
                "observations": self.observations,
                "last_estimated": self.last_estimated,
                "last_measured": self.last_measured,
                "last_seconds": self.last_seconds,
            }

    def load_state(self, state: "Mapping[str, Any] | None") -> None:
        """Restore :meth:`state_dict` output; ``None`` is a no-op.

        Non-numeric fields (a torn or hand-edited catalog row) are
        ignored field-by-field — a bad persisted state must never stop a
        service from starting.
        """
        if state is None:
            return
        with self._lock:
            try:
                scale = float(state.get("scale"))  # type: ignore[arg-type]
            except (TypeError, ValueError):
                scale = 0.0
            if scale > 0.0:
                self.scale = min(self.max_scale, max(self.min_scale, scale))
            try:
                self.observations = int(state.get("observations") or 0)
            except (TypeError, ValueError):
                self.observations = 0
            for attr in ("last_estimated", "last_measured", "last_seconds"):
                value = state.get(attr)
                try:
                    setattr(self, attr, float(value) if value is not None else None)
                except (TypeError, ValueError):
                    setattr(self, attr, None)

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready calibration state for the service's ``stats``."""
        return self.state_dict()


class AdaptiveRepackController:
    """Decides *when* an online repack is worth firing — and when it isn't.

    The fixed-budget policy repacks whenever expected cost exceeds a
    number the operator guessed up front.  This controller tunes itself to
    traffic instead, judging the *warm decayed* expected cost per request
    (what requests actually pay given the live cache, weighted toward
    recent traffic) against a baseline it learns:

    * **warming** — too little observed traffic to judge; hold.
    * **steady** — cost sits at or below the hysteresis band around
      ``baseline`` (the cost measured right after the last repack, or the
      plan-projected cost of the first calibration).  Nothing to do.
    * **triggered** — cost crossed ``trigger_factor × baseline`` (or the
      controller is uncalibrated): a plan evaluation is due.  The caller
      solves a plan and brings it back through :meth:`approve`, which
      applies the **amortization gate**: the estimated staging cost must
      be recouped within ``horizon`` requests out of the per-request gain,
      or the repack does not fire.
    * **stand-down** — a triggered evaluation found the repack not worth
      it (no gain, or the horizon not met).  The controller holds there —
      no repeated futile solves — until a commit changes the store, the
      cost drifts another ``trigger_factor`` above the stood-down level,
      or the decayed workload *distribution* drifts more than
      ``drift_threshold`` from the one it was judged under
      (:func:`~repro.storage.workload_log.frequency_drift`).

    The drift signal also fires from *steady*: the baseline was measured
    under one workload shape (recorded at repack/calibration time), and
    once the live decayed distribution no longer resembles it — and cost
    has left the comfortable side of the band — the baseline is stale and
    a re-plan is due even though cost never crossed the trigger line.

    Re-arming out of the band needs cost to fall below
    ``standdown_factor × baseline``; between the two thresholds the state
    holds — that band is what prevents repack thrash when cost oscillates
    around a single threshold.  All methods are thread-safe; the
    controller itself never touches the repository — callers feed it
    numbers and act on its verdicts, which keeps every transition unit
    testable without a store.
    """

    def __init__(
        self,
        *,
        horizon: float = 1000.0,
        trigger_factor: float = 1.5,
        standdown_factor: float = 1.15,
        drift_threshold: float = 0.35,
        min_observations: int = 16,
    ) -> None:
        if horizon <= 0:
            raise ValueError("horizon must be positive (requests)")
        if trigger_factor <= standdown_factor:
            raise ValueError(
                "trigger_factor must exceed standdown_factor "
                "(the hysteresis band would be empty or inverted)"
            )
        if standdown_factor < 1.0:
            raise ValueError("standdown_factor must be >= 1.0")
        self.horizon = float(horizon)
        self.trigger_factor = float(trigger_factor)
        self.standdown_factor = float(standdown_factor)
        self.drift_threshold = float(drift_threshold)
        self.min_observations = int(min_observations)
        self._lock = threading.Lock()
        self.state = "warming"
        self.baseline: float | None = None
        self.last_cost: float | None = None
        self.last_reason = "no evaluation yet"
        self.evaluations = 0
        self.repacks_fired = 0
        self._standdown_cost: float | None = None
        self._standdown_frequencies: dict[VersionID, float] | None = None
        # The decayed workload shape the current baseline was judged
        # under; the steady-state drift trigger compares against it.
        self._reference_frequencies: dict[VersionID, float] | None = None

    # ------------------------------------------------------------------ #
    # the evaluation loop
    # ------------------------------------------------------------------ #
    def observe(
        self,
        cost_per_request: float,
        *,
        observations: int,
        frequencies: Mapping[VersionID, float] | None = None,
    ) -> bool:
        """Fold one evaluation of the warm decayed cost; True = plan now.

        ``observations`` is the total access count behind the number (the
        workload log's clock); ``frequencies`` the decayed vector it was
        priced under, used for drift detection against a stood-down state.
        """
        from .workload_log import frequency_drift

        cost = float(cost_per_request)
        with self._lock:
            self.evaluations += 1
            self.last_cost = cost
            if observations < self.min_observations:
                self.state = "warming"
                self.last_reason = (
                    f"warming: {observations} accesses observed, "
                    f"need {self.min_observations}"
                )
                return False
            if self.baseline is None:
                self.state = "triggered"
                self.last_reason = "uncalibrated: planning to learn the baseline"
                return True
            trigger_at = self.trigger_factor * self.baseline
            standdown_at = self.standdown_factor * self.baseline
            if self.state == "stand-down":
                assert self._standdown_cost is not None
                drift = frequency_drift(
                    frequencies or {}, self._standdown_frequencies or {}
                )
                if cost > self.trigger_factor * self._standdown_cost:
                    self.state = "triggered"
                    self.last_reason = (
                        f"re-triggered: cost {cost:.1f} grew past "
                        f"{self.trigger_factor:.2f}x the stood-down "
                        f"{self._standdown_cost:.1f}"
                    )
                    return True
                if drift > self.drift_threshold:
                    self.state = "triggered"
                    self.last_reason = (
                        f"re-triggered: workload drifted {drift:.2f} "
                        f"(> {self.drift_threshold:.2f}) since standing down"
                    )
                    return True
                if cost < standdown_at:
                    self.state = "steady"
                    self.last_reason = (
                        f"recovered: cost {cost:.1f} fell below the band "
                        f"({standdown_at:.1f})"
                    )
                    return False
                self.last_reason = (
                    f"standing down: cost {cost:.1f} unchanged since the "
                    "last unprofitable evaluation"
                )
                return False
            if cost > trigger_at:
                self.state = "triggered"
                self.last_reason = (
                    f"triggered: cost {cost:.1f} > "
                    f"{self.trigger_factor:.2f}x baseline {self.baseline:.1f}"
                )
                return True
            if cost > standdown_at and self._reference_frequencies is not None:
                drift = frequency_drift(
                    frequencies or {}, self._reference_frequencies
                )
                if drift > self.drift_threshold:
                    self.state = "triggered"
                    self.last_reason = (
                        f"triggered: workload drifted {drift:.2f} "
                        f"(> {self.drift_threshold:.2f}) from the baseline's "
                        f"shape and cost {cost:.1f} left the band"
                    )
                    return True
            if cost < standdown_at:
                self.state = "steady"
                self.last_reason = (
                    f"steady: cost {cost:.1f} within "
                    f"{self.standdown_factor:.2f}x baseline {self.baseline:.1f}"
                )
            else:
                # Inside the hysteresis band: hold whatever state we were
                # in rather than flapping on a single threshold.
                self.last_reason = (
                    f"holding ({self.state}): cost {cost:.1f} inside the "
                    f"band [{standdown_at:.1f}, {trigger_at:.1f}]"
                )
            return self.state == "triggered"

    def approve(
        self,
        current_cost: float,
        projected_cost: float,
        repack_cost: float,
        *,
        frequencies: Mapping[VersionID, float] | None = None,
    ) -> bool:
        """The amortization gate, judged after a plan has been solved.

        ``current_cost`` is the warm per-request cost being paid now,
        ``projected_cost`` the plan's expected per-request cost, and
        ``repack_cost`` the estimated one-off staging cost
        (:func:`estimate_repack_cost`).  The repack fires only when the
        per-request gain recoups that cost within ``horizon`` requests;
        otherwise the controller stands down, remembering the cost level
        and workload shape it judged.
        """
        with self._lock:
            gain = float(current_cost) - float(projected_cost)
            if gain <= 0.0:
                self._stand_down_locked(
                    current_cost,
                    projected_cost,
                    frequencies,
                    reason=(
                        f"stand-down: plan projects {projected_cost:.1f}/request, "
                        f"no improvement over the current {current_cost:.1f}"
                    ),
                )
                return False
            if gain * self.horizon < float(repack_cost):
                self._stand_down_locked(
                    current_cost,
                    projected_cost,
                    frequencies,
                    reason=(
                        f"stand-down: staging cost {repack_cost:.1f} not recouped "
                        f"within {self.horizon:.0f} requests at "
                        f"{gain:.1f}/request gain"
                    ),
                )
                return False
            self.last_reason = (
                f"approved: {gain:.1f}/request gain recoups staging cost "
                f"{repack_cost:.1f} within {repack_cost / gain:.0f} requests"
            )
            return True

    def _stand_down_locked(
        self,
        current_cost: float,
        projected_cost: float,
        frequencies: Mapping[VersionID, float] | None,
        *,
        reason: str,
    ) -> None:
        self.state = "stand-down"
        self._standdown_cost = float(current_cost)
        self._standdown_frequencies = dict(frequencies or {})
        if self.baseline is None:
            # Calibrated without firing: the plan told us what is
            # achievable, which is all the hysteresis band needs.
            self.baseline = max(float(projected_cost), 1e-9)
            self._reference_frequencies = dict(frequencies or {})
        self.last_reason = reason

    # ------------------------------------------------------------------ #
    # external events
    # ------------------------------------------------------------------ #
    def note_repack(
        self,
        post_cost_per_request: float,
        *,
        frequencies: Mapping[VersionID, float] | None = None,
    ) -> None:
        """A repack completed; its measured outcome is the new baseline.

        ``frequencies`` is the decayed vector the repack was planned
        against — the workload shape the new baseline is valid for, which
        the steady-state drift trigger compares future traffic to.
        """
        with self._lock:
            self.repacks_fired += 1
            self.baseline = max(float(post_cost_per_request), 1e-9)
            self.state = "steady"
            self._standdown_cost = None
            self._standdown_frequencies = None
            self._reference_frequencies = dict(frequencies or {})
            self.last_reason = (
                f"repacked: new baseline {self.baseline:.1f}/request"
            )

    def note_commit(self) -> None:
        """The store changed shape; a stood-down verdict is stale."""
        with self._lock:
            if self.state == "stand-down":
                self.state = "steady"
                self._standdown_cost = None
                self._standdown_frequencies = None
                self.last_reason = "re-armed: a commit changed the store"

    def state_dict(self) -> dict[str, Any]:
        """JSON-serializable mutable state, for persistence in the catalog.

        Covers everything :meth:`load_state` restores — the learned
        baseline, the state machine's position and the workload shapes its
        verdicts were judged under — but none of the constructor-tunable
        thresholds (those belong to the process configuration, not to the
        store).
        """
        with self._lock:
            return {
                "state": self.state,
                "baseline": self.baseline,
                "last_cost": self.last_cost,
                "last_reason": self.last_reason,
                "evaluations": self.evaluations,
                "repacks_fired": self.repacks_fired,
                "standdown_cost": self._standdown_cost,
                "standdown_frequencies": self._standdown_frequencies,
                "reference_frequencies": self._reference_frequencies,
            }

    def load_state(self, state: "Mapping[str, Any] | None") -> None:
        """Restore :meth:`state_dict` output (a restarted serving process).

        Unknown keys are ignored and missing ones keep their defaults, so
        state saved by an older layout still loads; ``None`` (nothing was
        ever persisted) is a no-op.
        """
        if state is None:
            return
        with self._lock:
            value = state.get("state")
            if value in ("warming", "steady", "triggered", "stand-down"):
                self.state = value
            baseline = state.get("baseline")
            self.baseline = float(baseline) if baseline is not None else None
            last_cost = state.get("last_cost")
            self.last_cost = float(last_cost) if last_cost is not None else None
            self.last_reason = str(state.get("last_reason") or self.last_reason)
            self.evaluations = int(state.get("evaluations") or 0)
            self.repacks_fired = int(state.get("repacks_fired") or 0)
            standdown_cost = state.get("standdown_cost")
            self._standdown_cost = (
                float(standdown_cost) if standdown_cost is not None else None
            )
            frequencies = state.get("standdown_frequencies")
            self._standdown_frequencies = (
                dict(frequencies) if frequencies is not None else None
            )
            frequencies = state.get("reference_frequencies")
            self._reference_frequencies = (
                dict(frequencies) if frequencies is not None else None
            )

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready controller state for the service's ``stats``."""
        with self._lock:
            return {
                "state": self.state,
                "baseline_per_request": self.baseline,
                "last_cost_per_request": self.last_cost,
                "trigger_factor": self.trigger_factor,
                "standdown_factor": self.standdown_factor,
                "drift_threshold": self.drift_threshold,
                "horizon": self.horizon,
                "min_observations": self.min_observations,
                "evaluations": self.evaluations,
                "repacks_fired": self.repacks_fired,
                "standdown_cost": self._standdown_cost,
                "last_reason": self.last_reason,
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<AdaptiveRepackController state={self.state!r} "
            f"baseline={self.baseline} repacks={self.repacks_fired}>"
        )


@dataclass
class StagedRepack:
    """Phase-1 output: the new encoding, written but not yet visible.

    ``new_objects`` maps every version to its new object id;
    ``old_objects`` snapshots the ids backing versions before the rebuild
    (the garbage-collection candidates of the swap).
    """

    plan: StoragePlan
    new_objects: dict[VersionID, str]
    old_objects: set[str]
    num_deltas: int
    storage_before: float
    #: Catalog snapshot row staged by this rebuild (``None`` when the
    #: repository has no metadata catalog).
    snapshot_id: int | None = None
    #: Recreation cost (Φ units) the rebuild *actually paid* streaming the
    #: old encoding — the measured side of :func:`estimate_repack_cost`.
    staging_cost_paid: float = 0.0
    #: Wall seconds phase 1 took.
    staging_seconds: float = 0.0
    #: ``(role, token)`` lease fence captured when staging began (replica
    #: groups only).  The activation transaction validates it so a planner
    #: whose lease was stolen mid-staging cannot activate a stale epoch.
    fence: tuple[str, int] | None = None


class OnlineRepacker:
    """Re-encodes a repository according to a storage plan, epoch by epoch.

    One instance owns the repack lifecycle of one repository: it computes
    plans (optionally workload-aware), stages new encodings concurrently
    with readers, and performs the exclusive swap.  ``lock`` serializes
    whole repacks — hold it across a ``rebuild``/``swap`` pair so two
    operators cannot interleave epochs.
    """

    def __init__(self, repository: "Repository", *, payload_cache_size: int = 64) -> None:
        self.repository = repository
        self.payload_cache_size = int(payload_cache_size)
        self.lock = threading.Lock()

    @property
    def epoch(self) -> int:
        """The active epoch — owned by the repository, not this object.

        Plain repositories count epochs in memory (the CLI's state file
        persists the number); a catalog-backed repository reads it from
        the database, so it is monotonic across restarts and shared
        between processes.
        """
        return self.repository.epoch

    # ------------------------------------------------------------------ #
    # planning
    # ------------------------------------------------------------------ #
    def compute_plan(
        self,
        *,
        problem: int = 3,
        threshold: float | None = None,
        threshold_factor: float | None = None,
        hop_limit: int = 2,
        algorithm: str = "auto",
        frequencies: Mapping[VersionID, float] | None = None,
    ) -> SolveResult:
        """Solve for a new storage plan over the repository's live payloads.

        ``frequencies`` makes the plan workload-aware: the optimizers weight
        each version's recreation cost by its observed access frequency
        (Figure 16), so hot versions end up materialized or on short chains.
        """
        if len(self.repository) == 0:
            raise ReproError("cannot repack an empty repository")
        instance = self.repository.problem_instance(
            access_frequencies=dict(frequencies) if frequencies else None,
            hop_limit=hop_limit,
        )
        resolved = default_threshold(
            instance, problem, threshold=threshold, factor=threshold_factor
        )
        return solve(instance, problem, threshold=resolved, algorithm=algorithm)

    # ------------------------------------------------------------------ #
    # phase 1: concurrent-reader-safe staging
    # ------------------------------------------------------------------ #
    def rebuild(
        self, plan: StoragePlan, *, fence: tuple[str, int] | None = None
    ) -> StagedRepack:
        """Write the new encoding next to the old one (readers unaffected).

        Safe to run while other threads serve checkouts from the same
        repository: only *new* content-addressed keys are written (existing
        keys are never overwritten) and nothing is repointed or deleted.
        Concurrent *commits* must be paused by the caller — a version
        committed after planning would not be covered by ``plan``.

        ``fence`` is the planner lease's ``(role, token)`` pair in replica
        groups; it rides on the staged result and is validated by the
        activation transaction (see :meth:`_swap_catalog`).
        """
        repository = self.repository
        for vid in repository.graph.version_ids:
            if vid not in plan:
                if repository.catalog is not None:
                    # A version adopted from a peer after the plan was
                    # computed keeps its current encoding: the activation
                    # transaction carries unplanned versions forward.
                    continue
                raise InvalidStoragePlanError(
                    f"plan does not cover repository version {vid!r}"
                )

        storage_before = repository.total_storage_cost()
        old_object_of = {
            vid: repository.object_id_of(vid) for vid in repository.graph.version_ids
        }

        # With a metadata catalog, the epoch being staged is a snapshot row
        # from the start: a crash anywhere in this phase leaves a staged
        # (or failed) row that prune_dead_epochs can clean, and the old
        # epoch keeps serving untouched.
        catalog = repository.catalog
        snapshot_id: int | None = None
        if catalog is not None:
            snapshot_id, _ = catalog.create_snapshot()

        # Payloads are content — independent of how they are encoded — so
        # the old encoding can be read lazily while new objects are
        # written.  The bounded cache makes consecutive reads along shared
        # old chains cheap without ever pinning the whole repository in
        # memory.
        old_reader = BatchMaterializer(
            repository.store, repository.encoder, cache_size=self.payload_cache_size
        )

        pre_existing = set(repository.store.object_ids())
        new_objects: dict[VersionID, str] = {}
        num_deltas = 0
        staging_started = time.perf_counter()
        staging_cost_paid = 0.0
        try:
            for vid in plan_order(plan):
                item = old_reader.materialize(old_object_of[vid])
                payload = item.payload
                staging_cost_paid += item.recreation_cost
                parent = plan.parent(vid)
                if parent is ROOT:
                    new_objects[vid] = repository.store.put_full(payload)
                    continue
                parent_item = old_reader.materialize(old_object_of[parent])
                staging_cost_paid += parent_item.recreation_cost
                delta = repository.encoder.diff(parent_item.payload, payload)
                new_objects[vid] = repository.store.put_delta(
                    new_objects[parent], delta
                )
                num_deltas += 1
        except BaseException as exc:
            if catalog is not None:
                # A shared store forbids removing the staged objects here:
                # a peer staging concurrently can own identical
                # content-addressed keys.  Mark the snapshot failed; the
                # next prune sweeps whatever no retained mapping reaches.
                catalog.fail_snapshot(snapshot_id, repr(exc))
            else:
                # An aborted staging must not leak half an epoch into the
                # store: drop every object this rebuild created (never ones
                # that were shared with the live encoding by content
                # addressing — those pre-existed).  Readers cannot
                # reference the staged keys, so removal is safe even
                # mid-traffic.
                for object_id in set(new_objects.values()) - pre_existing:
                    repository.store.remove(object_id)
            raise

        if catalog is not None:
            catalog.stage_mapping(snapshot_id, new_objects)

        return StagedRepack(
            plan=plan,
            new_objects=new_objects,
            old_objects=set(old_object_of.values()),
            num_deltas=num_deltas,
            storage_before=storage_before,
            snapshot_id=snapshot_id,
            staging_cost_paid=staging_cost_paid,
            staging_seconds=time.perf_counter() - staging_started,
            fence=fence,
        )

    # ------------------------------------------------------------------ #
    # phase 2: exclusive swap
    # ------------------------------------------------------------------ #
    def swap(self, staged: StagedRepack) -> dict[str, float]:
        """Repoint every version at its new object and collect the garbage.

        The caller must exclude concurrent readers and writers (the serving
        layer takes its coordinator's exclusive barrier); the swap itself
        is quick — repoint, sweep unreferenced objects, drop stale payload
        caches, bump the epoch.  Nothing here replays or even reads a
        payload: the referenced set comes from the store's cost index
        (every staged object was indexed at write time, every old object
        when the rebuild streamed it), so the exclusive window stays at
        dictionary-walk cost no matter how large the store is.
        """
        repository = self.repository
        if repository.catalog is not None:
            return self._swap_catalog(staged)
        for vid, object_id in staged.new_objects.items():
            repository._set_object(vid, object_id)

        # Drop objects no chain references anymore.  The referenced set is
        # computed over *current* chains of all versions, so objects shared
        # between epochs by content addressing survive, as do old-epoch
        # bases still referenced by chains outside the plan.
        referenced: set[str] = set()
        for vid in repository.graph.version_ids:
            referenced.update(repository.store.chain_ids(repository.object_id_of(vid)))
        for object_id in staged.old_objects:
            if object_id not in referenced:
                repository.store.remove(object_id)

        # Stale payloads and chain metadata describe the dead epoch.
        repository.materializer.clear_cache()
        repository.batch_materializer.clear_cache()
        repository.epoch += 1

        # Deliberately no ``storage_after`` here: totalling storage
        # enumerates backend keys (and reads any object the index has not
        # seen — e.g. orphans left by a crashed staging), which must not
        # happen inside the caller's exclusive window.  Callers add it
        # after the barrier; see :meth:`repack`.
        return {
            "storage_before": staged.storage_before,
            "num_versions": float(len(staged.plan)),
            "num_materialized": float(len(staged.plan.materialized_versions())),
            "num_deltas": float(staged.num_deltas),
            "staging_cost_paid": staged.staging_cost_paid,
            "staging_seconds": staged.staging_seconds,
            "epoch": float(self.epoch),
        }

    def _swap_catalog(self, staged: StagedRepack) -> dict[str, float]:
        """The catalog form of the swap: one database transaction.

        :meth:`~repro.storage.catalog.MetadataCatalog.activate_snapshot`
        atomically repoints the active epoch at the staged mapping (with
        versions committed since the staging carried forward), so a crash
        leaves either the old epoch fully serving or the new one — never a
        mix.  Exactly one activation wins per epoch: losing the race to a
        peer process raises :class:`~repro.exceptions.SnapshotConflictError`
        after marking the staging failed (prunable).  When the staging
        carried a lease fence and the planner lease was stolen in between,
        the activation transaction raises
        :class:`~repro.exceptions.LeaseFencedError` — the zombie's staging
        is likewise failed before re-raising.  Dead epochs keep their
        mapping for point-in-time reads until pruned — garbage collection
        is :meth:`prune_dead_epochs`'s job, not the swap's.
        """
        repository = self.repository
        catalog = repository.catalog
        stats = {
            "storage_before": staged.storage_before,
            "num_versions": float(len(staged.plan)),
            "num_materialized": float(len(staged.plan.materialized_versions())),
            "num_deltas": float(staged.num_deltas),
        }
        try:
            new_epoch = catalog.activate_snapshot(
                staged.snapshot_id, stats, fence=staged.fence
            )
        except LeaseFencedError:
            catalog.fail_snapshot(
                staged.snapshot_id, "activation fenced: planner lease was stolen"
            )
            raise
        if new_epoch is None:
            catalog.fail_snapshot(
                staged.snapshot_id, "lost the activation race to a peer"
            )
            raise SnapshotConflictError(
                f"snapshot {staged.snapshot_id} was staged against an epoch "
                "that is no longer active (a peer repacked first); the "
                "staging was marked failed and can be pruned"
            )
        # Adopt the activated mapping (staged + carried-forward versions)
        # and the new epoch; the sync drops the payload caches on the
        # epoch change.
        repository.sync(force=True)
        report = dict(stats)
        report["staging_cost_paid"] = staged.staging_cost_paid
        report["staging_seconds"] = staged.staging_seconds
        report["epoch"] = float(new_epoch)
        report["snapshot_id"] = float(staged.snapshot_id)
        return report

    # ------------------------------------------------------------------ #
    # epoch garbage collection (catalog-backed repositories)
    # ------------------------------------------------------------------ #
    def prune_dead_epochs(self) -> dict[str, float]:
        """Drop every non-active snapshot and sweep unreferenced objects.

        Point-in-time reads of dead epochs end here: their mapping rows are
        deleted, then every store object not reachable from a *retained*
        mapping's chain is removed — which also collects orphans left by
        crashed or failed stagings and by lost commit races.  Callers must
        quiesce peer writers first (the serving layer holds its write gate;
        multi-process deployments prune from one process while the others
        only read — see the sharing rules in docs/serving.md): a peer's
        objects written but not yet mapped would look unreferenced.
        No-op without a catalog.
        """
        repository = self.repository
        catalog = repository.catalog
        if catalog is None:
            return {"pruned_snapshots": 0.0, "removed_objects": 0.0}
        with self.lock:
            pruned = 0
            for snapshot_id in catalog.prunable_snapshots():
                catalog.prune_snapshot(snapshot_id)
                pruned += 1
            referenced: set[str] = set()
            for object_id in catalog.live_object_ids():
                try:
                    referenced.update(repository.store.chain_ids(object_id))
                except ObjectNotFoundError:  # pragma: no cover - torn peer state
                    continue
            removed = 0
            for object_id in repository.store.object_ids():
                if object_id not in referenced:
                    repository.store.remove(object_id)
                    removed += 1
            return {
                "pruned_snapshots": float(pruned),
                "removed_objects": float(removed),
            }

    # ------------------------------------------------------------------ #
    # single-threaded convenience
    # ------------------------------------------------------------------ #
    def repack(self, plan: StoragePlan) -> dict[str, float]:
        """``rebuild`` + ``swap`` under the repack lock (offline callers)."""
        with self.lock:
            report = self.swap(self.rebuild(plan))
            report["storage_after"] = self.repository.total_storage_cost()
            return report
