"""Online repacking: re-encode a live repository and swap epochs atomically.

The optimization layer decides *which* versions to materialize and which
deltas to keep; this module carries that decision out against the object
store — including while the repository is being served.  The work is split
into two phases so a long re-encode never blocks readers:

* :meth:`OnlineRepacker.rebuild` (phase 1) streams every version's payload
  out of the *old* encoding through a bounded
  :class:`~repro.storage.batch.BatchMaterializer` cache and writes the new
  encoding next to it.  The store is content-addressed and existing keys
  are never overwritten, so concurrent readers — who only ever follow the
  old version→object mapping — are completely unaffected.
* :meth:`OnlineRepacker.swap` (phase 2) repoints every version at its new
  object, garbage-collects objects no chain references anymore, drops the
  repository's payload caches and bumps the *epoch* counter.  The caller
  must exclude concurrent readers and writers for this (short) phase; the
  serving layer does so under its serving lock, which is what guarantees a
  checkout is served entirely from one epoch — never a mix.

``rebuild`` + ``swap`` back :meth:`Repository.repack` (single-threaded
convenience via :meth:`repack`) as well as the serving layer's
workload-aware ``POST /repack``.  The streaming property — payloads are
read lazily, never all pinned in memory — is what lets the re-packer run
against repositories larger than RAM, exactly like the archival repacking
jobs surveyed in the paper's Section 6.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

from ..core.instance import ROOT
from ..core.problems import SolveResult, default_threshold, solve
from ..core.storage_plan import StoragePlan
from ..core.version import VersionID
from ..exceptions import InvalidStoragePlanError, ReproError
from .batch import BatchMaterializer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .repository import Repository

__all__ = [
    "OnlineRepacker",
    "StagedRepack",
    "plan_order",
    "expected_workload_cost",
]


def plan_order(plan: StoragePlan) -> list[VersionID]:
    """Versions of ``plan`` ordered parents-before-children.

    Materialized versions come first, then every delta child after its
    parent, so the re-packer can always diff against an already re-encoded
    base.
    """
    children = plan.children_map()
    order: list[VersionID] = []
    stack = list(reversed(children.get(ROOT, [])))
    while stack:
        node = stack.pop()
        order.append(node)
        stack.extend(reversed(children.get(node, [])))
    if len(order) != len(plan):
        raise InvalidStoragePlanError(
            "storage plan is not a tree rooted at the dummy vertex"
        )
    return order


def expected_workload_cost(
    repository: "Repository",
    frequencies: Mapping[VersionID, float] | None = None,
) -> dict[str, float]:
    """Expected recreation cost of serving ``frequencies`` cache-cold.

    Each version's cost is the Φ chain sum of its *current* encoding —
    answered by the object store's incremental cost index (maintained at
    commit/repack time), so no payload is replayed and no exclusive lock is
    needed — weighted by its access frequency (uniform when ``frequencies``
    is ``None``; zero-frequency versions are skipped entirely).  Returns
    the weighted ``total``, the ``per_request`` mean, and the total
    ``weight`` — the quantity an online repack is supposed to shrink,
    measurable before and after without replaying a single request.
    """
    store = repository.store
    total = 0.0
    weight = 0.0
    for vid in repository.graph.version_ids:
        freq = 1.0 if frequencies is None else float(frequencies.get(vid, 0.0))
        if freq <= 0.0:
            continue
        cost = store.chain_stats(repository.object_id_of(vid)).phi_total
        total += freq * cost
        weight += freq
    return {
        "total": total,
        "per_request": total / weight if weight > 0 else 0.0,
        "weight": weight,
    }


@dataclass
class StagedRepack:
    """Phase-1 output: the new encoding, written but not yet visible.

    ``new_objects`` maps every version to its new object id;
    ``old_objects`` snapshots the ids backing versions before the rebuild
    (the garbage-collection candidates of the swap).
    """

    plan: StoragePlan
    new_objects: dict[VersionID, str]
    old_objects: set[str]
    num_deltas: int
    storage_before: float


class OnlineRepacker:
    """Re-encodes a repository according to a storage plan, epoch by epoch.

    One instance owns the repack lifecycle of one repository: it computes
    plans (optionally workload-aware), stages new encodings concurrently
    with readers, and performs the exclusive swap.  ``lock`` serializes
    whole repacks — hold it across a ``rebuild``/``swap`` pair so two
    operators cannot interleave epochs.
    """

    def __init__(self, repository: "Repository", *, payload_cache_size: int = 64) -> None:
        self.repository = repository
        self.payload_cache_size = int(payload_cache_size)
        self.epoch = 0
        self.lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # planning
    # ------------------------------------------------------------------ #
    def compute_plan(
        self,
        *,
        problem: int = 3,
        threshold: float | None = None,
        threshold_factor: float | None = None,
        hop_limit: int = 2,
        algorithm: str = "auto",
        frequencies: Mapping[VersionID, float] | None = None,
    ) -> SolveResult:
        """Solve for a new storage plan over the repository's live payloads.

        ``frequencies`` makes the plan workload-aware: the optimizers weight
        each version's recreation cost by its observed access frequency
        (Figure 16), so hot versions end up materialized or on short chains.
        """
        if len(self.repository) == 0:
            raise ReproError("cannot repack an empty repository")
        instance = self.repository.problem_instance(
            access_frequencies=dict(frequencies) if frequencies else None,
            hop_limit=hop_limit,
        )
        resolved = default_threshold(
            instance, problem, threshold=threshold, factor=threshold_factor
        )
        return solve(instance, problem, threshold=resolved, algorithm=algorithm)

    # ------------------------------------------------------------------ #
    # phase 1: concurrent-reader-safe staging
    # ------------------------------------------------------------------ #
    def rebuild(self, plan: StoragePlan) -> StagedRepack:
        """Write the new encoding next to the old one (readers unaffected).

        Safe to run while other threads serve checkouts from the same
        repository: only *new* content-addressed keys are written (existing
        keys are never overwritten) and nothing is repointed or deleted.
        Concurrent *commits* must be paused by the caller — a version
        committed after planning would not be covered by ``plan``.
        """
        repository = self.repository
        for vid in repository.graph.version_ids:
            if vid not in plan:
                raise InvalidStoragePlanError(
                    f"plan does not cover repository version {vid!r}"
                )

        storage_before = repository.total_storage_cost()
        old_object_of = {
            vid: repository.object_id_of(vid) for vid in repository.graph.version_ids
        }

        # Payloads are content — independent of how they are encoded — so
        # the old encoding can be read lazily while new objects are
        # written.  The bounded cache makes consecutive reads along shared
        # old chains cheap without ever pinning the whole repository in
        # memory.
        old_reader = BatchMaterializer(
            repository.store, repository.encoder, cache_size=self.payload_cache_size
        )

        pre_existing = set(repository.store.object_ids())
        new_objects: dict[VersionID, str] = {}
        num_deltas = 0
        try:
            for vid in plan_order(plan):
                payload = old_reader.materialize(old_object_of[vid]).payload
                parent = plan.parent(vid)
                if parent is ROOT:
                    new_objects[vid] = repository.store.put_full(payload)
                    continue
                parent_payload = old_reader.materialize(old_object_of[parent]).payload
                delta = repository.encoder.diff(parent_payload, payload)
                new_objects[vid] = repository.store.put_delta(
                    new_objects[parent], delta
                )
                num_deltas += 1
        except BaseException:
            # An aborted staging must not leak half an epoch into the store:
            # drop every object this rebuild created (never ones that were
            # shared with the live encoding by content addressing — those
            # pre-existed).  Readers cannot reference the staged keys, so
            # removal is safe even mid-traffic.
            for object_id in set(new_objects.values()) - pre_existing:
                repository.store.remove(object_id)
            raise

        return StagedRepack(
            plan=plan,
            new_objects=new_objects,
            old_objects=set(old_object_of.values()),
            num_deltas=num_deltas,
            storage_before=storage_before,
        )

    # ------------------------------------------------------------------ #
    # phase 2: exclusive swap
    # ------------------------------------------------------------------ #
    def swap(self, staged: StagedRepack) -> dict[str, float]:
        """Repoint every version at its new object and collect the garbage.

        The caller must exclude concurrent readers and writers (the serving
        layer takes its coordinator's exclusive barrier); the swap itself
        is quick — repoint, sweep unreferenced objects, drop stale payload
        caches, bump the epoch.  Nothing here replays or even reads a
        payload: the referenced set comes from the store's cost index
        (every staged object was indexed at write time, every old object
        when the rebuild streamed it), so the exclusive window stays at
        dictionary-walk cost no matter how large the store is.
        """
        repository = self.repository
        for vid, object_id in staged.new_objects.items():
            repository._set_object(vid, object_id)

        # Drop objects no chain references anymore.  The referenced set is
        # computed over *current* chains of all versions, so objects shared
        # between epochs by content addressing survive, as do old-epoch
        # bases still referenced by chains outside the plan.
        referenced: set[str] = set()
        for vid in repository.graph.version_ids:
            referenced.update(repository.store.chain_ids(repository.object_id_of(vid)))
        for object_id in staged.old_objects:
            if object_id not in referenced:
                repository.store.remove(object_id)

        # Stale payloads and chain metadata describe the dead epoch.
        repository.materializer.clear_cache()
        repository.batch_materializer.clear_cache()
        self.epoch += 1

        # Deliberately no ``storage_after`` here: totalling storage
        # enumerates backend keys (and reads any object the index has not
        # seen — e.g. orphans left by a crashed staging), which must not
        # happen inside the caller's exclusive window.  Callers add it
        # after the barrier; see :meth:`repack`.
        return {
            "storage_before": staged.storage_before,
            "num_versions": float(len(staged.plan)),
            "num_materialized": float(len(staged.plan.materialized_versions())),
            "num_deltas": float(staged.num_deltas),
            "epoch": float(self.epoch),
        }

    # ------------------------------------------------------------------ #
    # single-threaded convenience
    # ------------------------------------------------------------------ #
    def repack(self, plan: StoragePlan) -> dict[str, float]:
        """``rebuild`` + ``swap`` under the repack lock (offline callers)."""
        with self.lock:
            report = self.swap(self.rebuild(plan))
            report["storage_after"] = self.repository.total_storage_cost()
            return report
