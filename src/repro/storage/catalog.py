"""Transactional metadata catalog backed by SQLite (``sqlite://PATH``).

Every piece of metadata that prices and swaps storage plans used to live in
ad-hoc JSON files and process memory: the version graph and branch heads in
``repro_state.json``, the workload log in ``workload.log``, the repack
epoch and the adaptive controller's learned baseline nowhere at all.  That
story caps a store at exactly one writer process and forgets its epoch on
every restart.  This module replaces it with one SQLite database in WAL
mode, following the ``GraphStorage`` snapshot contract (SNIPPETS.md 2–3):

* :class:`MetadataCatalog` — the version graph, branch heads, the epoch
  pointer, workload counters and controller state in one transactional
  schema.  Readers run inside snapshot-isolated transactions (WAL lets
  them proceed while a writer commits); writers serialize on SQLite's
  database lock, so any number of processes can share one store safely.
* **Snapshot lifecycle** — a repack epoch is a row in the ``snapshots``
  table: :meth:`~MetadataCatalog.create_snapshot` stages it,
  :meth:`~MetadataCatalog.activate_snapshot` performs the swap as one
  transaction (exactly one activation can win per epoch — a peer that
  repacked first invalidates this staging),
  :meth:`~MetadataCatalog.fail_snapshot` records an aborted staging and
  :meth:`~MetadataCatalog.prune_snapshot` garbage-collects dead epochs.
  Dead epochs keep their version→object mapping until pruned, so any
  retained epoch supports point-in-time reads
  (:meth:`~MetadataCatalog.snapshot_manifest`).
* :class:`SQLiteBackend` — a :class:`~repro.storage.backends.StorageBackend`
  storing object bytes in the same database file, so ``repro init
  --backend sqlite://PATH`` puts payloads *and* metadata behind one
  crash-atomic commit domain.
* :class:`CatalogWorkloadLog` — a :class:`~repro.storage.workload_log.WorkloadLog`
  whose counters live in the catalog: several serving processes fold their
  observed traffic into one shared workload record.

Commit transactions validate their delta base against the active
snapshot's mapping (:class:`~repro.exceptions.StaleEpochError` when a peer
repacked underneath), which is what makes the swap's garbage collection
safe across processes: no commit can slip a delta onto an object another
process is about to collect.
"""

from __future__ import annotations

import json
import os
import pickle
import sqlite3
import threading
import time
from typing import Any, Iterator, Mapping, Sequence

from ..core.version import VersionID
from ..exceptions import (
    DuplicateVersionError,
    LeaseFencedError,
    RepositoryError,
    SnapshotConflictError,
    StaleEpochError,
)
from .backends import BackendSpecError, StorageBackend, register_backend
from .workload_log import DEFAULT_HALF_LIFE, WorkloadLog, _decay

__all__ = [
    "MetadataCatalog",
    "SQLiteBackend",
    "CatalogWorkloadLog",
]

_SCHEMA_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT
);
CREATE TABLE IF NOT EXISTS versions (
    seq        INTEGER PRIMARY KEY AUTOINCREMENT,
    version_id TEXT UNIQUE NOT NULL,
    size       REAL NOT NULL,
    name       TEXT NOT NULL DEFAULT '',
    parents    TEXT NOT NULL DEFAULT '[]',
    created_at INTEGER NOT NULL DEFAULT 0,
    metadata   TEXT NOT NULL DEFAULT '{}'
);
CREATE TABLE IF NOT EXISTS branches (
    name TEXT PRIMARY KEY,
    head TEXT
);
CREATE TABLE IF NOT EXISTS snapshots (
    id            INTEGER PRIMARY KEY AUTOINCREMENT,
    epoch         INTEGER NOT NULL,
    status        TEXT NOT NULL,
    based_on_epoch INTEGER,
    created_seq   INTEGER NOT NULL DEFAULT 0,
    activated_seq INTEGER,
    stats         TEXT,
    error         TEXT
);
CREATE TABLE IF NOT EXISTS version_objects (
    snapshot_id INTEGER NOT NULL,
    version_id  TEXT NOT NULL,
    object_id   TEXT NOT NULL,
    PRIMARY KEY (snapshot_id, version_id)
);
CREATE TABLE IF NOT EXISTS workload (
    version_id TEXT PRIMARY KEY,
    count      INTEGER NOT NULL,
    weight     REAL NOT NULL,
    last_tick  INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS objects (
    key   TEXT PRIMARY KEY,
    value BLOB NOT NULL
);
CREATE TABLE IF NOT EXISTS repack_decisions (
    id     INTEGER PRIMARY KEY AUTOINCREMENT,
    record TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS leases (
    role       TEXT PRIMARY KEY,
    holder     TEXT,
    expires_at REAL NOT NULL DEFAULT 0,
    token      INTEGER NOT NULL DEFAULT 0
);
"""

#: Rows kept in ``repack_decisions`` before the oldest are trimmed.
_DECISION_RETENTION = 4096

#: Seeded ``meta`` rows (INSERT OR IGNORE — only the first opener wins).
_META_DEFAULTS = {
    "schema_version": str(_SCHEMA_VERSION),
    "change_seq": "0",
    "counter": "0",
    "current_branch": "main",
    "epoch": "0",
    "workload_total": "0",
    "controller_state": "",
}


class MetadataCatalog:
    """Transactional metadata for one repository, shared across processes.

    One instance serves one database file.  Connections are opened per
    thread (sqlite3 connections are not thread-portable) with WAL
    journaling and a generous busy timeout, so concurrent writers from
    other threads *and other processes* queue instead of failing.  Every
    write transaction bumps ``change_seq``, the cheap poll a serving
    process uses to notice a peer's commits and swaps.
    """

    def __init__(self, path: str, *, timeout: float = 30.0) -> None:
        if path.startswith("sqlite://"):
            # Accept the spec form directly — otherwise the scheme prefix
            # silently becomes a literal `sqlite:` directory on disk.
            path = path[len("sqlite://"):]
        if not path:
            raise BackendSpecError("sqlite:// catalog requires a database path")
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        self.path = path
        self.timeout = float(timeout)
        self._local = threading.local()
        self._connections: list[sqlite3.Connection] = []
        self._connections_lock = threading.Lock()
        self._init_schema()

    # ------------------------------------------------------------------ #
    # connections and transactions
    # ------------------------------------------------------------------ #
    def _connection(self) -> sqlite3.Connection:
        connection = getattr(self._local, "connection", None)
        if connection is None:
            connection = sqlite3.connect(
                self.path, timeout=self.timeout, isolation_level=None
            )
            connection.execute("PRAGMA journal_mode=WAL")
            connection.execute("PRAGMA synchronous=NORMAL")
            self._local.connection = connection
            with self._connections_lock:
                self._connections.append(connection)
        return connection

    class _WriteTransaction:
        """``with catalog._write() as conn:`` — one serialized write txn.

        ``BEGIN IMMEDIATE`` takes the database write lock up front, so the
        reads inside the transaction already see the state the commit will
        extend — the validation reads (parent mappings, active epoch) can
        never be invalidated between read and write.  ``change_seq`` is
        bumped on the way out of every successful transaction.
        """

        __slots__ = ("connection",)

        def __init__(self, connection: sqlite3.Connection) -> None:
            self.connection = connection

        def __enter__(self) -> sqlite3.Connection:
            self.connection.execute("BEGIN IMMEDIATE")
            return self.connection

        def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
            if exc_type is None:
                self.connection.execute(
                    "UPDATE meta SET value = CAST(value AS INTEGER) + 1 "
                    "WHERE key = 'change_seq'"
                )
                self.connection.execute("COMMIT")
            else:
                self.connection.execute("ROLLBACK")

    def _write(self) -> "MetadataCatalog._WriteTransaction":
        return self._WriteTransaction(self._connection())

    class _ReadTransaction:
        """A snapshot-isolated read: every query sees one WAL snapshot."""

        __slots__ = ("connection",)

        def __init__(self, connection: sqlite3.Connection) -> None:
            self.connection = connection

        def __enter__(self) -> sqlite3.Connection:
            self.connection.execute("BEGIN")
            return self.connection

        def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
            # Reads mutate nothing; COMMIT merely releases the snapshot.
            self.connection.execute("COMMIT" if exc_type is None else "ROLLBACK")

    def _read(self) -> "MetadataCatalog._ReadTransaction":
        return self._ReadTransaction(self._connection())

    def _init_schema(self) -> None:
        connection = self._connection()
        connection.execute("BEGIN IMMEDIATE")
        try:
            for statement in _SCHEMA.strip().split(";\n"):
                if statement.strip():
                    connection.execute(statement)
            for key, value in _META_DEFAULTS.items():
                connection.execute(
                    "INSERT OR IGNORE INTO meta(key, value) VALUES (?, ?)",
                    (key, value),
                )
            connection.execute(
                "INSERT OR IGNORE INTO branches(name, head) VALUES ('main', NULL)"
            )
            # Epoch 0 is a real snapshot row from the start, so commits have
            # an active mapping to write into and the lifecycle is uniform.
            row = connection.execute(
                "SELECT 1 FROM snapshots WHERE status = 'active'"
            ).fetchone()
            if row is None:
                connection.execute(
                    "INSERT INTO snapshots(epoch, status, based_on_epoch) "
                    "VALUES (0, 'active', NULL)"
                )
            connection.execute("COMMIT")
        except BaseException:
            connection.execute("ROLLBACK")
            raise

    def close(self) -> None:
        """Close every connection this catalog opened (best effort)."""
        with self._connections_lock:
            connections, self._connections = self._connections, []
        for connection in connections:
            try:
                connection.close()
            except Exception:  # pragma: no cover - interpreter shutdown
                pass
        self._local = threading.local()

    # ------------------------------------------------------------------ #
    # meta helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _meta(connection: sqlite3.Connection, key: str) -> str:
        row = connection.execute(
            "SELECT value FROM meta WHERE key = ?", (key,)
        ).fetchone()
        return row[0] if row is not None and row[0] is not None else ""

    @staticmethod
    def _set_meta(connection: sqlite3.Connection, key: str, value: str) -> None:
        connection.execute(
            "INSERT OR REPLACE INTO meta(key, value) VALUES (?, ?)", (key, value)
        )

    def change_seq(self) -> int:
        """Monotonic counter bumped by every write transaction (any process)."""
        return int(self._meta(self._connection(), "change_seq") or 0)

    def epoch(self) -> int:
        """The active epoch number — survives restarts, monotonic for life."""
        return int(self._meta(self._connection(), "epoch") or 0)

    # ------------------------------------------------------------------ #
    # repository state
    # ------------------------------------------------------------------ #
    def state(self) -> dict[str, Any]:
        """One consistent snapshot of everything a repository loads.

        Versions arrive in insertion (``seq``) order, so replaying them
        into a :class:`~repro.core.version_graph.VersionGraph` never sees a
        child before its parent.
        """
        with self._read() as connection:
            versions = [
                {
                    "id": row[0],
                    "size": row[1],
                    "name": row[2],
                    "parents": json.loads(row[3]),
                    "created_at": row[4],
                    "metadata": json.loads(row[5]),
                }
                for row in connection.execute(
                    "SELECT version_id, size, name, parents, created_at, metadata "
                    "FROM versions ORDER BY seq"
                )
            ]
            branches = {
                row[0]: row[1]
                for row in connection.execute("SELECT name, head FROM branches")
            }
            active = connection.execute(
                "SELECT id, epoch FROM snapshots WHERE status = 'active'"
            ).fetchone()
            mapping: dict[VersionID, str] = {}
            if active is not None:
                mapping = {
                    row[0]: row[1]
                    for row in connection.execute(
                        "SELECT version_id, object_id FROM version_objects "
                        "WHERE snapshot_id = ?",
                        (active[0],),
                    )
                }
            return {
                "counter": int(self._meta(connection, "counter") or 0),
                "current_branch": self._meta(connection, "current_branch") or "main",
                "epoch": int(self._meta(connection, "epoch") or 0),
                "change_seq": int(self._meta(connection, "change_seq") or 0),
                "versions": versions,
                "branches": branches,
                "objects": mapping,
            }

    def record_commit(
        self,
        *,
        version_id: VersionID | None,
        size: float,
        name: str,
        parents: Sequence[VersionID],
        metadata: Mapping[str, Any],
        object_id: str,
        branch: str,
        base_version: VersionID | None = None,
        base_object_id: str | None = None,
    ) -> tuple[VersionID, int]:
        """Register one committed version in a single transaction.

        Allocates the version id from the shared counter when ``version_id``
        is ``None`` (two processes can never mint the same id), inserts the
        version row and its object mapping into the *active* snapshot, and
        advances the branch head.  When the version was encoded as a delta,
        ``base_version``/``base_object_id`` name the parent object the delta
        was diffed against: the transaction validates that the active
        mapping still points the parent at that exact object and raises
        :class:`~repro.exceptions.StaleEpochError` otherwise — a peer
        repacked between encoding and this transaction, and committing the
        delta anyway would chain it onto an object headed for garbage
        collection.  Returns ``(version_id, created_at)``.
        """
        with self._write() as connection:
            active = connection.execute(
                "SELECT id FROM snapshots WHERE status = 'active'"
            ).fetchone()
            if active is None:  # pragma: no cover - schema seeds one
                raise RepositoryError("catalog has no active snapshot")
            active_id = active[0]
            if base_version is not None:
                row = connection.execute(
                    "SELECT object_id FROM version_objects "
                    "WHERE snapshot_id = ? AND version_id = ?",
                    (active_id, base_version),
                ).fetchone()
                if row is None or row[0] != base_object_id:
                    raise StaleEpochError(
                        f"delta base for {base_version!r} moved from "
                        f"{base_object_id!r} to "
                        f"{row[0] if row else None!r}: the active epoch "
                        "changed since the delta was encoded"
                    )
            counter = int(self._meta(connection, "counter") or 0)
            if version_id is None:
                vid: VersionID = f"v{counter}"
                created_at = counter
                self._set_meta(connection, "counter", str(counter + 1))
            else:
                vid = version_id
                created_at = counter
            if not name:
                name = str(vid)
            try:
                connection.execute(
                    "INSERT INTO versions"
                    "(version_id, size, name, parents, created_at, metadata) "
                    "VALUES (?, ?, ?, ?, ?, ?)",
                    (
                        vid,
                        float(size),
                        name,
                        json.dumps(list(parents)),
                        created_at,
                        json.dumps(dict(metadata)),
                    ),
                )
            except sqlite3.IntegrityError:
                raise DuplicateVersionError(vid) from None
            connection.execute(
                "INSERT OR REPLACE INTO version_objects"
                "(snapshot_id, version_id, object_id) VALUES (?, ?, ?)",
                (active_id, vid, object_id),
            )
            connection.execute(
                "INSERT OR REPLACE INTO branches(name, head) VALUES (?, ?)",
                (branch, vid),
            )
        return vid, created_at

    def save_branch(self, name: str, head: VersionID | None) -> None:
        """Create or repoint a branch head."""
        with self._write() as connection:
            connection.execute(
                "INSERT OR REPLACE INTO branches(name, head) VALUES (?, ?)",
                (name, head),
            )

    def save_current_branch(self, name: str) -> None:
        """Remember the branch new commits default to (advisory)."""
        with self._write() as connection:
            self._set_meta(connection, "current_branch", name)

    # ------------------------------------------------------------------ #
    # the snapshot lifecycle (GraphStorage contract)
    # ------------------------------------------------------------------ #
    def create_snapshot(self) -> tuple[int, int]:
        """Stage a new epoch; returns ``(snapshot_id, proposed_epoch)``.

        The staged snapshot remembers the epoch it was planned against
        (``based_on_epoch``); activation later refuses if that epoch is no
        longer the active one — which is exactly how two processes racing
        to repack one store resolve to a single activation.
        """
        with self._write() as connection:
            active = connection.execute(
                "SELECT epoch FROM snapshots WHERE status = 'active'"
            ).fetchone()
            based_on = int(active[0]) if active is not None else 0
            seq = int(self._meta(connection, "change_seq") or 0)
            cursor = connection.execute(
                "INSERT INTO snapshots(epoch, status, based_on_epoch, created_seq) "
                "VALUES (?, 'staged', ?, ?)",
                (based_on + 1, based_on, seq),
            )
            return int(cursor.lastrowid), based_on + 1

    def stage_mapping(
        self, snapshot_id: int, mapping: Mapping[VersionID, str]
    ) -> None:
        """Record the staged snapshot's version→object mapping."""
        with self._write() as connection:
            row = connection.execute(
                "SELECT status FROM snapshots WHERE id = ?", (snapshot_id,)
            ).fetchone()
            if row is None or row[0] != "staged":
                raise SnapshotConflictError(
                    f"snapshot {snapshot_id} is not staged "
                    f"(status {row[0] if row else 'missing'!r})"
                )
            connection.execute(
                "DELETE FROM version_objects WHERE snapshot_id = ?", (snapshot_id,)
            )
            connection.executemany(
                "INSERT INTO version_objects(snapshot_id, version_id, object_id) "
                "VALUES (?, ?, ?)",
                [(snapshot_id, vid, oid) for vid, oid in mapping.items()],
            )

    def activate_snapshot(
        self,
        snapshot_id: int,
        stats: Mapping[str, Any] | None = None,
        *,
        fence: tuple[str, int] | None = None,
    ) -> int | None:
        """The swap, as one transaction.  Returns the new epoch, or ``None``.

        Exactly one activation can win per epoch: the transaction verifies
        the staged snapshot's ``based_on_epoch`` is still the active epoch
        and returns ``None`` without changing anything when it is not (a
        peer activated first — fail and prune this staging instead).  On
        success, versions committed *after* the staging (by any process)
        carry their current mapping forward into the new snapshot, the old
        snapshot is marked dead (its mapping is retained for point-in-time
        reads until pruned) and the epoch pointer advances — atomically, so
        a crash leaves either the old epoch fully serving or the new one.

        ``fence=(role, token)`` additionally validates, inside the same
        transaction, that the lease table's current fencing token for
        ``role`` still equals the token the planner captured when staging
        began.  A mismatch raises :class:`~repro.exceptions.LeaseFencedError`
        (nothing is changed): the planner was paused past its lease TTL and
        a peer stole the lease, so this activation belongs to a zombie —
        the ``based_on_epoch`` check alone cannot catch that when no epoch
        swap happened in between.
        """
        with self._write() as connection:
            if fence is not None:
                role, expected_token = fence
                lease_row = connection.execute(
                    "SELECT token FROM leases WHERE role = ?", (role,)
                ).fetchone()
                current_token = int(lease_row[0]) if lease_row is not None else 0
                if current_token != int(expected_token):
                    raise LeaseFencedError(
                        f"snapshot {snapshot_id} was staged under "
                        f"{role!r} lease token {int(expected_token)}, but the "
                        f"current token is {current_token}: the lease was "
                        "stolen mid-repack (the planner was paused past its "
                        "TTL); refusing the zombie activation"
                    )
            row = connection.execute(
                "SELECT epoch, status, based_on_epoch FROM snapshots WHERE id = ?",
                (snapshot_id,),
            ).fetchone()
            if row is None or row[1] != "staged":
                return None
            new_epoch, _, based_on = int(row[0]), row[1], row[2]
            active = connection.execute(
                "SELECT id, epoch FROM snapshots WHERE status = 'active'"
            ).fetchone()
            if active is None or int(active[1]) != int(based_on):
                return None
            active_id = int(active[0])
            seq = int(self._meta(connection, "change_seq") or 0)
            # Carry forward versions the staging never saw: they keep the
            # objects they are encoded against (their chains stay live
            # because commit transactions validated those bases).
            connection.execute(
                "INSERT INTO version_objects(snapshot_id, version_id, object_id) "
                "SELECT ?, version_id, object_id FROM version_objects "
                "WHERE snapshot_id = ? AND version_id NOT IN "
                "(SELECT version_id FROM version_objects WHERE snapshot_id = ?)",
                (snapshot_id, active_id, snapshot_id),
            )
            connection.execute(
                "UPDATE snapshots SET status = 'dead' WHERE id = ?", (active_id,)
            )
            connection.execute(
                "UPDATE snapshots SET status = 'active', activated_seq = ?, "
                "stats = ? WHERE id = ?",
                (seq, json.dumps(dict(stats)) if stats else None, snapshot_id),
            )
            self._set_meta(connection, "epoch", str(new_epoch))
            return new_epoch

    def fail_snapshot(self, snapshot_id: int, error: str) -> None:
        """Record an aborted staging (crash cleanup keeps the row for GC)."""
        with self._write() as connection:
            connection.execute(
                "UPDATE snapshots SET status = 'failed', error = ? "
                "WHERE id = ? AND status = 'staged'",
                (error, snapshot_id),
            )

    def prune_snapshot(self, snapshot_id: int) -> list[str]:
        """Drop a dead/failed/staged-and-abandoned snapshot's metadata.

        The active snapshot is never prunable.  Returns the object ids that
        were mapped *only* by the pruned snapshot — the garbage-collection
        candidates whose chains the caller sweeps against the store (the
        catalog knows mappings, not delta chains).
        """
        with self._write() as connection:
            row = connection.execute(
                "SELECT status FROM snapshots WHERE id = ?", (snapshot_id,)
            ).fetchone()
            if row is None:
                return []
            if row[0] == "active":
                raise SnapshotConflictError(
                    f"snapshot {snapshot_id} is active and cannot be pruned"
                )
            candidates = [
                r[0]
                for r in connection.execute(
                    "SELECT DISTINCT object_id FROM version_objects "
                    "WHERE snapshot_id = ? AND object_id NOT IN "
                    "(SELECT object_id FROM version_objects WHERE snapshot_id != ?)",
                    (snapshot_id, snapshot_id),
                )
            ]
            connection.execute(
                "DELETE FROM version_objects WHERE snapshot_id = ?", (snapshot_id,)
            )
            connection.execute(
                "DELETE FROM snapshots WHERE id = ?", (snapshot_id,)
            )
            return candidates

    def snapshots(self) -> list[dict[str, Any]]:
        """Epoch history, oldest first (every retained snapshot row)."""
        with self._read() as connection:
            return [
                {
                    "id": row[0],
                    "epoch": row[1],
                    "status": row[2],
                    "based_on_epoch": row[3],
                    "versions": row[4],
                    "stats": json.loads(row[5]) if row[5] else None,
                    "error": row[6],
                }
                for row in connection.execute(
                    "SELECT s.id, s.epoch, s.status, s.based_on_epoch, "
                    "(SELECT COUNT(*) FROM version_objects vo "
                    " WHERE vo.snapshot_id = s.id), s.stats, s.error "
                    "FROM snapshots s ORDER BY s.id"
                )
            ]

    def prunable_snapshots(self) -> list[int]:
        """Ids of every non-active snapshot (dead, failed or abandoned)."""
        with self._read() as connection:
            return [
                row[0]
                for row in connection.execute(
                    "SELECT id FROM snapshots WHERE status != 'active' ORDER BY id"
                )
            ]

    def snapshot_manifest(self, snapshot_id: int) -> dict[str, Any]:
        """Point-in-time read: one retained epoch's status and full mapping."""
        with self._read() as connection:
            row = connection.execute(
                "SELECT epoch, status, based_on_epoch, stats, error "
                "FROM snapshots WHERE id = ?",
                (snapshot_id,),
            ).fetchone()
            if row is None:
                raise SnapshotConflictError(f"no snapshot {snapshot_id} (pruned?)")
            mapping = {
                r[0]: r[1]
                for r in connection.execute(
                    "SELECT version_id, object_id FROM version_objects "
                    "WHERE snapshot_id = ?",
                    (snapshot_id,),
                )
            }
            return {
                "id": snapshot_id,
                "epoch": row[0],
                "status": row[1],
                "based_on_epoch": row[2],
                "stats": json.loads(row[3]) if row[3] else None,
                "error": row[4],
                "objects": mapping,
            }

    def active_snapshot_id(self) -> int:
        """Id of the snapshot currently serving."""
        with self._read() as connection:
            row = connection.execute(
                "SELECT id FROM snapshots WHERE status = 'active'"
            ).fetchone()
            if row is None:  # pragma: no cover - schema seeds one
                raise RepositoryError("catalog has no active snapshot")
            return int(row[0])

    def live_object_ids(self) -> set[str]:
        """Every object id any retained snapshot's mapping references."""
        with self._read() as connection:
            return {
                row[0]
                for row in connection.execute(
                    "SELECT DISTINCT object_id FROM version_objects"
                )
            }

    # ------------------------------------------------------------------ #
    # workload counters
    # ------------------------------------------------------------------ #
    def workload_record(
        self, entries: Sequence[tuple[VersionID, int]], half_life: float
    ) -> None:
        """Fold accesses into the shared counters, one transaction.

        The decay clock is the catalog-wide total access count, so several
        serving processes folding concurrently still maintain one coherent
        decaying view — the same lazy-decay model as the file-backed log.
        """
        with self._write() as connection:
            total = int(self._meta(connection, "workload_total") or 0)
            for vid, count in entries:
                total += count
                row = connection.execute(
                    "SELECT count, weight, last_tick FROM workload "
                    "WHERE version_id = ?",
                    (vid,),
                ).fetchone()
                if row is None:
                    connection.execute(
                        "INSERT INTO workload(version_id, count, weight, last_tick) "
                        "VALUES (?, ?, ?, ?)",
                        (vid, count, float(count), total),
                    )
                else:
                    weight = _decay(row[1], total - row[2], half_life) + count
                    connection.execute(
                        "UPDATE workload SET count = ?, weight = ?, last_tick = ? "
                        "WHERE version_id = ?",
                        (row[0] + count, weight, total, vid),
                    )
            self._set_meta(connection, "workload_total", str(total))

    def workload_state(
        self,
    ) -> tuple[dict[VersionID, int], dict[VersionID, tuple[float, int]], int]:
        """``(counts, decayed {vid: (weight, last_tick)}, total)`` snapshot."""
        with self._read() as connection:
            counts: dict[VersionID, int] = {}
            decayed: dict[VersionID, tuple[float, int]] = {}
            for vid, count, weight, last in connection.execute(
                "SELECT version_id, count, weight, last_tick FROM workload"
            ):
                counts[vid] = count
                decayed[vid] = (weight, last)
            total = int(self._meta(connection, "workload_total") or 0)
            return counts, decayed, total

    def workload_clear(self) -> None:
        """Forget every recorded access."""
        with self._write() as connection:
            connection.execute("DELETE FROM workload")
            self._set_meta(connection, "workload_total", "0")

    # ------------------------------------------------------------------ #
    # adaptive-controller state
    # ------------------------------------------------------------------ #
    def save_controller_state(self, state: Mapping[str, Any]) -> None:
        """Persist the adaptive controller's learned state."""
        with self._write() as connection:
            self._set_meta(connection, "controller_state", json.dumps(dict(state)))

    def load_controller_state(self) -> dict[str, Any] | None:
        """The persisted controller state, or ``None`` when never saved."""
        raw = self._meta(self._connection(), "controller_state")
        if not raw:
            return None
        try:
            state = json.loads(raw)
        except ValueError:  # pragma: no cover - a torn row is a fresh start
            return None
        return state if isinstance(state, dict) else None

    def save_staging_calibration(self, state: Mapping[str, Any]) -> None:
        """Persist the staging-cost calibration's fitted state."""
        with self._write() as connection:
            self._set_meta(connection, "staging_calibration", json.dumps(dict(state)))

    def load_staging_calibration(self) -> dict[str, Any] | None:
        """The persisted calibration state, or ``None`` when never saved."""
        raw = self._meta(self._connection(), "staging_calibration")
        if not raw:
            return None
        try:
            state = json.loads(raw)
        except ValueError:  # pragma: no cover - a torn row is a fresh start
            return None
        return state if isinstance(state, dict) else None

    # ------------------------------------------------------------------ #
    # repack decision log
    # ------------------------------------------------------------------ #
    def append_repack_decision(self, record: Mapping[str, Any]) -> None:
        """Persist one structured repack decision record.

        Retention is bounded: once the table exceeds ``_DECISION_RETENTION``
        rows the oldest are trimmed, so a long-lived store cannot grow the
        catalog without bound from evaluate cycles alone.
        """
        payload = json.dumps(dict(record), default=str, sort_keys=True)
        with self._write() as connection:
            connection.execute(
                "INSERT INTO repack_decisions (record) VALUES (?)", (payload,)
            )
            connection.execute(
                "DELETE FROM repack_decisions WHERE id <= ("
                "SELECT MAX(id) FROM repack_decisions) - ?",
                (_DECISION_RETENTION,),
            )

    def repack_decisions(self, limit: int = 256) -> list[dict[str, Any]]:
        """The most recent persisted decision records, oldest first."""
        with self._read() as connection:
            rows = connection.execute(
                "SELECT record FROM repack_decisions ORDER BY id DESC LIMIT ?",
                (int(limit),),
            ).fetchall()
        records: list[dict[str, Any]] = []
        for (raw,) in reversed(rows):
            try:
                record = json.loads(raw)
            except ValueError:  # pragma: no cover - a torn row is skipped
                continue
            if isinstance(record, dict):
                records.append(record)
        return records

    # ------------------------------------------------------------------ #
    # replica-group leases
    # ------------------------------------------------------------------ #
    class _LeaseTransaction:
        """A ``BEGIN IMMEDIATE`` transaction that does *not* bump change_seq.

        Lease renewals fire every second or so from every replica; bumping
        the change counter for each would make every peer re-read the full
        catalog state on its next sync even though no repository state
        moved.  Lease state is polled through :meth:`lease_state` instead.
        """

        __slots__ = ("connection",)

        def __init__(self, connection: sqlite3.Connection) -> None:
            self.connection = connection

        def __enter__(self) -> sqlite3.Connection:
            self.connection.execute("BEGIN IMMEDIATE")
            return self.connection

        def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
            self.connection.execute("COMMIT" if exc_type is None else "ROLLBACK")

    def acquire_lease(
        self, role: str, holder: str, ttl: float, *, now: float | None = None
    ) -> dict[str, Any]:
        """Acquire, renew or steal the ``role`` lease in one transaction.

        The single ``BEGIN IMMEDIATE`` transaction makes the state machine
        race-free across any number of processes:

        * no row (or a released one) → **acquired**: the holder is
          recorded, the fencing token increments;
        * row held by ``holder`` → **renewed**: the expiry extends, the
          token is unchanged (renewal never invalidates in-flight work);
        * row held by a peer whose lease expired → **stolen**: the holder
          changes and the token increments, permanently fencing anything
          the previous holder staged under the old token;
        * row held by a live peer → **rejected**: nothing changes.

        ``now`` defaults to wall-clock time (comparable across processes
        on one host); tests inject skewed or manual clocks.  Returns the
        post-transaction lease state plus the transition that happened
        (``acquired`` / ``renewed`` / ``stolen`` / ``rejected``).
        """
        if ttl <= 0:
            raise ValueError("lease ttl must be positive (seconds)")
        timestamp = float(now) if now is not None else time.time()
        with self._LeaseTransaction(self._connection()) as connection:
            row = connection.execute(
                "SELECT holder, expires_at, token FROM leases WHERE role = ?",
                (role,),
            ).fetchone()
            if row is None:
                connection.execute(
                    "INSERT INTO leases(role, holder, expires_at, token) "
                    "VALUES (?, ?, ?, 1)",
                    (role, holder, timestamp + ttl),
                )
                return {
                    "event": "acquired",
                    "role": role,
                    "holder": holder,
                    "token": 1,
                    "expires_at": timestamp + ttl,
                }
            current_holder, expires_at, token = row[0], float(row[1]), int(row[2])
            if current_holder == holder:
                connection.execute(
                    "UPDATE leases SET expires_at = ? WHERE role = ?",
                    (timestamp + ttl, role),
                )
                return {
                    "event": "renewed",
                    "role": role,
                    "holder": holder,
                    "token": token,
                    "expires_at": timestamp + ttl,
                }
            if current_holder is None or expires_at <= timestamp:
                # Released, or expired under a peer: take over.  The token
                # increments on every holder change — never on renewal, and
                # never backwards — which is what makes it a fencing token.
                connection.execute(
                    "UPDATE leases SET holder = ?, expires_at = ?, "
                    "token = token + 1 WHERE role = ?",
                    (holder, timestamp + ttl, role),
                )
                result = {
                    "event": "stolen" if current_holder is not None else "acquired",
                    "role": role,
                    "holder": holder,
                    "token": token + 1,
                    "expires_at": timestamp + ttl,
                }
                if current_holder is not None:
                    result["stolen_from"] = current_holder
                return result
            return {
                "event": "rejected",
                "role": role,
                "holder": current_holder,
                "token": token,
                "expires_at": expires_at,
            }

    def release_lease(self, role: str, holder: str) -> bool:
        """Voluntarily give the ``role`` lease up (clean shutdown path).

        The row is kept with its token — deleting it would reset the token
        to 1 on the next acquire, and a fencing token must never regress —
        but the holder is cleared and the expiry zeroed, so the next
        acquire takes over immediately (with a fresh token).  Only the
        current holder can release; returns whether it did.
        """
        with self._LeaseTransaction(self._connection()) as connection:
            cursor = connection.execute(
                "UPDATE leases SET holder = NULL, expires_at = 0 "
                "WHERE role = ? AND holder = ?",
                (role, holder),
            )
            return cursor.rowcount > 0

    def lease_state(self, role: str) -> dict[str, Any] | None:
        """The ``role`` lease row (holder, expiry, token), or ``None``."""
        row = self._connection().execute(
            "SELECT holder, expires_at, token FROM leases WHERE role = ?",
            (role,),
        ).fetchone()
        if row is None:
            return None
        return {
            "role": role,
            "holder": row[0],
            "expires_at": float(row[1]),
            "token": int(row[2]),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MetadataCatalog path={self.path!r} epoch={self.epoch()}>"


class SQLiteBackend(StorageBackend):
    """Object bytes in the catalog's database (``objects`` table).

    One ``sqlite://PATH`` file holds payload objects *and* metadata, so a
    repository on this backend is a single crash-atomic unit any number of
    processes can open.  Values are pickled like the filesystem backends;
    writes are single-statement transactions (atomic — a torn object can
    never be read back, WAL or not).
    """

    scheme = "sqlite"

    def __init__(self, path: str) -> None:
        if not path:
            raise BackendSpecError("sqlite:// backend requires a database path")
        self.catalog = MetadataCatalog(path)
        self.path = self.catalog.path

    def _connection(self) -> sqlite3.Connection:
        return self.catalog._connection()

    def put(self, key: str, value: Any) -> None:
        data = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        self._connection().execute(
            "INSERT OR REPLACE INTO objects(key, value) VALUES (?, ?)", (key, data)
        )

    def get(self, key: str) -> Any:
        row = self._connection().execute(
            "SELECT value FROM objects WHERE key = ?", (key,)
        ).fetchone()
        if row is None:
            raise KeyError(key)
        return pickle.loads(row[0])

    def get_many(self, keys: Sequence[str]) -> dict[str, Any]:
        if not keys:
            return {}
        found: dict[str, Any] = {}
        connection = self._connection()
        # SQLite caps bound parameters; chunk generously below the limit.
        seq = list(keys)
        for start in range(0, len(seq), 500):
            chunk = seq[start : start + 500]
            placeholders = ",".join("?" for _ in chunk)
            for key, data in connection.execute(
                f"SELECT key, value FROM objects WHERE key IN ({placeholders})",
                chunk,
            ):
                found[key] = pickle.loads(data)
        return found

    def delete(self, key: str) -> None:
        self._connection().execute("DELETE FROM objects WHERE key = ?", (key,))

    def keys(self) -> Iterator[str]:
        rows = self._connection().execute("SELECT key FROM objects").fetchall()
        return iter([row[0] for row in rows])

    def __contains__(self, key: str) -> bool:
        row = self._connection().execute(
            "SELECT 1 FROM objects WHERE key = ?", (key,)
        ).fetchone()
        return row is not None

    def __len__(self) -> int:
        row = self._connection().execute("SELECT COUNT(*) FROM objects").fetchone()
        return int(row[0])

    def spec(self) -> str:
        return f"{self.scheme}://{self.path}"


class CatalogWorkloadLog(WorkloadLog):
    """A :class:`WorkloadLog` whose counters live in the metadata catalog.

    Reads and writes go straight to the database, so several serving
    processes sharing one ``sqlite://`` store fold their traffic into one
    record, and the decaying view's clock is the catalog-wide access total.
    Weights are stored at full float precision (no rounding on compaction —
    there is no compaction; the table *is* the compact form).
    """

    def __init__(
        self, catalog: MetadataCatalog, *, half_life: float = DEFAULT_HALF_LIFE
    ) -> None:
        super().__init__(None, half_life=half_life)
        self.catalog = catalog
        self.path = f"sqlite://{catalog.path}"

    # -- recording ------------------------------------------------------- #
    def record(self, version_id: VersionID, count: int = 1) -> None:
        if count <= 0:
            raise ValueError("access count must be positive")
        with self._lock:
            self.catalog.workload_record([(version_id, count)], self.half_life)

    def record_many(self, version_ids: "Sequence[VersionID] | Any") -> None:
        entries: dict[VersionID, int] = {}
        for vid in version_ids:
            entries[vid] = entries.get(vid, 0) + 1
        if not entries:
            return
        with self._lock:
            self.catalog.workload_record(list(entries.items()), self.half_life)

    # -- reading --------------------------------------------------------- #
    def counts(self) -> dict[VersionID, int]:
        counts, _, _ = self.catalog.workload_state()
        return counts

    def decayed_counts(self) -> dict[VersionID, float]:
        _, decayed, total = self.catalog.workload_state()
        return {
            vid: _decay(weight, total - last, self.half_life)
            for vid, (weight, last) in decayed.items()
        }

    @property
    def total_accesses(self) -> int:
        _, _, total = self.catalog.workload_state()
        return total

    def __len__(self) -> int:
        return len(self.counts())

    def frequencies(
        self,
        version_ids: "Sequence[VersionID] | None" = None,
        *,
        smoothing: float = 0.0,
    ) -> dict[VersionID, float]:
        weights = {vid: float(c) for vid, c in self.counts().items()}
        return self._vector(weights, version_ids, smoothing)

    def decayed_frequencies(
        self,
        version_ids: "Sequence[VersionID] | None" = None,
        *,
        half_life: float | None = None,
        smoothing: float = 0.0,
    ) -> dict[VersionID, float]:
        if half_life is not None and half_life <= 0:
            raise ValueError("half_life must be positive (accesses)")
        if half_life is not None and half_life != self.half_life:
            raise ValueError(
                "a catalog-backed workload log keeps no event order to "
                "replay under a different half-life; construct it with the "
                "one you need"
            )
        return self._vector(self.decayed_counts(), version_ids, smoothing)

    def snapshot(self) -> dict[str, object]:
        counts, decayed, total = self.catalog.workload_state()
        return {
            "path": self.path,
            "total_accesses": total,
            "distinct_versions": len(counts),
            "half_life": self.half_life,
            "decayed_total": float(
                sum(
                    _decay(weight, total - last, self.half_life)
                    for weight, last in decayed.values()
                )
            ),
        }

    # -- maintenance ----------------------------------------------------- #
    def clear(self) -> None:
        with self._lock:
            self.catalog.workload_clear()

    def compact(self) -> None:
        pass  # the table is already one row per version

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CatalogWorkloadLog path={self.path!r} "
            f"half_life={self.half_life}>"
        )


register_backend(SQLiteBackend)
