"""Content-addressed object store.

The prototype version manager persists two kinds of objects:

* *full objects* — a complete version payload, and
* *delta objects* — a :class:`~repro.delta.base.Delta` plus the id of the
  base object it applies to.

Objects are addressed by a SHA-256 digest of their serialized form, so
identical payloads are automatically deduplicated (the same mechanism Git
and the archival systems surveyed in Section 6 rely on).  Where the bytes
actually live is delegated to a :class:`~repro.storage.backends.StorageBackend`
(in-memory by default; plain or compressed files on disk via ``file://`` /
``zip://`` specs), which keeps the repository and planner code independent
of the physical medium.
"""

from __future__ import annotations

import hashlib
import pickle
import threading
from dataclasses import dataclass
from typing import Any, Iterator

from ..delta.base import Delta, payload_size
from ..exceptions import ObjectNotFoundError
from .backends import FilesystemBackend, StorageBackend, open_backend

__all__ = ["StoredObject", "ObjectStore"]


@dataclass(frozen=True)
class StoredObject:
    """One object in the store.

    ``kind`` is ``"full"`` or ``"delta"``.  For delta objects ``base_id``
    names the object the delta applies to and ``payload`` holds the
    :class:`~repro.delta.base.Delta`; for full objects ``payload`` holds the
    version content itself.
    """

    object_id: str
    kind: str
    payload: Any
    base_id: str | None = None

    @property
    def is_delta(self) -> bool:
        """True for delta objects."""
        return self.kind == "delta"

    def storage_cost(self) -> float:
        """Bytes (abstract units) this object occupies."""
        if self.is_delta:
            delta: Delta = self.payload
            return delta.storage_cost
        return payload_size(self.payload)


class ObjectStore:
    """A content-addressed store for full and delta objects.

    ``backend`` accepts a :class:`~repro.storage.backends.StorageBackend`
    instance or a spec string (``memory://``, ``file://PATH``,
    ``zip://PATH``); ``directory`` is legacy sugar for ``file://directory``.
    """

    def __init__(
        self,
        directory: str | None = None,
        *,
        backend: str | StorageBackend | None = None,
    ) -> None:
        if directory is not None and backend is not None:
            raise ValueError("pass either 'directory' or 'backend', not both")
        if directory is not None:
            backend = FilesystemBackend(directory)
        self.backend = open_backend(backend)
        # Lazy id -> storage-cost index: objects are content-addressed, so a
        # cost never changes once stored; maintaining the index on writes
        # keeps total_storage_cost() from re-reading (and, for zip://,
        # re-inflating) the whole backend on every call.  The lock keeps the
        # index coherent when an online repack stages writes while another
        # thread totals storage for a stats snapshot.
        self._cost_index: dict[str, float] | None = None
        self._index_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # writing
    # ------------------------------------------------------------------ #
    def put_full(self, payload: Any) -> str:
        """Store a full payload; return its object id."""
        object_id = self._digest(("full", payload))
        if object_id not in self.backend:
            self._store(StoredObject(object_id=object_id, kind="full", payload=payload))
        return object_id

    def put_delta(self, base_id: str, delta: Delta) -> str:
        """Store a delta applying to ``base_id``; return its object id."""
        if base_id not in self.backend:
            raise ObjectNotFoundError(base_id)
        object_id = self._digest(("delta", base_id, delta.operations))
        if object_id not in self.backend:
            self._store(
                StoredObject(
                    object_id=object_id, kind="delta", payload=delta, base_id=base_id
                )
            )
        return object_id

    def remove(self, object_id: str) -> None:
        """Remove an object (no error if absent).  Used by the re-packer."""
        self.backend.delete(object_id)
        with self._index_lock:
            if self._cost_index is not None:
                self._cost_index.pop(object_id, None)

    # ------------------------------------------------------------------ #
    # reading
    # ------------------------------------------------------------------ #
    def get(self, object_id: str) -> StoredObject:
        """Fetch an object by id."""
        try:
            return self.backend.get(object_id)
        except KeyError:
            raise ObjectNotFoundError(
                f"object {object_id!r} is not in the store (backend "
                f"{self.backend.spec()!r})"
            ) from None

    def __contains__(self, object_id: str) -> bool:
        return object_id in self.backend

    def __len__(self) -> int:
        return len(self.backend)

    def __iter__(self) -> Iterator[StoredObject]:
        return (self.backend.get(key) for key in list(self.backend.keys()))

    def object_ids(self) -> list[str]:
        """Ids of every object currently stored."""
        return list(self.backend.keys())

    def total_storage_cost(self) -> float:
        """Sum of the storage costs of every object currently stored."""
        # Reconcile against the backend's key set so writes/removals made
        # through another store sharing the same backend are picked up:
        # listing keys is cheap, and under content addressing a present key
        # can never change cost, so only added/removed ids need reads.
        keys = set(self.backend.keys())
        with self._index_lock:
            if self._cost_index is None:
                self._cost_index = {}
            for object_id in [oid for oid in self._cost_index if oid not in keys]:
                del self._cost_index[object_id]
            missing = keys - self._cost_index.keys()
        costs = {oid: self.backend.get(oid).storage_cost() for oid in missing}
        with self._index_lock:
            assert self._cost_index is not None
            self._cost_index.update(costs)
            return float(
                sum(self._cost_index[oid] for oid in keys if oid in self._cost_index)
            )

    def get_many(self, object_ids: list[str]) -> dict[str, StoredObject]:
        """Fetch several objects at once; absent ids are simply omitted.

        Local backends loop over single gets; a chain-following remote
        backend answers the whole request in one round trip.
        """
        return self.backend.get_many(object_ids)

    def delta_chain(self, object_id: str) -> list[StoredObject]:
        """The chain of objects needed to materialize ``object_id``.

        The returned list starts at a full object and ends at the requested
        object; a full object's chain is just itself.  On a chain-following
        remote backend the whole chain is fetched in a single round trip
        (the server walks the base links) instead of one request per object.
        """
        if getattr(self.backend, "follows_chains", False):
            return self._remote_delta_chain(object_id)
        chain: list[StoredObject] = []
        current = self.get(object_id)
        seen: set[str] = set()
        while True:
            chain.append(current)
            if not current.is_delta:
                break
            if current.object_id in seen:
                raise ObjectNotFoundError(
                    f"delta chain of {object_id!r} contains a cycle"
                )
            seen.add(current.object_id)
            current = self.get(current.base_id)  # type: ignore[arg-type]
        chain.reverse()
        return chain

    def _remote_delta_chain(self, object_id: str) -> list[StoredObject]:
        """One-round-trip chain fetch against a chain-following backend."""
        objects = self.backend.get_many([object_id], follow_bases=True)
        chain: list[StoredObject] = []
        seen: set[str] = set()
        current_id: str | None = object_id
        while current_id is not None:
            obj = objects.get(current_id)
            if obj is None:
                # The server's response was incomplete (or the tip object is
                # absent); fall back to a single fetch so the error surfaces
                # with the store's usual translation.
                obj = self.get(current_id)
            chain.append(obj)
            if not obj.is_delta:
                break
            if obj.object_id in seen:
                raise ObjectNotFoundError(
                    f"delta chain of {object_id!r} contains a cycle"
                )
            seen.add(obj.object_id)
            current_id = obj.base_id
        chain.reverse()
        return chain

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    @staticmethod
    def _digest(value: Any) -> str:
        data = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        return hashlib.sha256(data).hexdigest()

    def _store(self, obj: StoredObject) -> None:
        self.backend.put(obj.object_id, obj)
        with self._index_lock:
            if self._cost_index is not None:
                self._cost_index[obj.object_id] = obj.storage_cost()
