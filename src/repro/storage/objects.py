"""Content-addressed object store with an incremental cost index.

The prototype version manager persists two kinds of objects:

* *full objects* — a complete version payload, and
* *delta objects* — a :class:`~repro.delta.base.Delta` plus the id of the
  base object it applies to.

Objects are addressed by a SHA-256 digest of their serialized form, so
identical payloads are automatically deduplicated (the same mechanism Git
and the archival systems surveyed in Section 6 rely on).  Where the bytes
actually live is delegated to a :class:`~repro.storage.backends.StorageBackend`
(in-memory by default; plain or compressed files on disk via ``file://`` /
``zip://`` specs), which keeps the repository and planner code independent
of the physical medium.

**The cost index.**  Because objects are content-addressed they are
immutable: an object's storage cost, Φ contribution and base link can never
change once stored.  The store therefore maintains an incremental metadata
index (:class:`ObjectMeta` per object, :class:`ChainStats` per chain tip)
filled at *write* time — every ``put_full``/``put_delta`` records its entry
— and backfilled from any read that fetches an object anyway.  Chain
pricing questions (``chain_ids``, ``chain_stats``, ``chain_root``) are
answered from this index with pure dictionary walks: no payload is
replayed, and for a store whose objects were all committed through it, no
backend read happens at all.  This is what lets the repacker and the
serving stats price plans without scanning payloads under a lock, and what
gives the serving layer a stable per-chain key (the chain's root object)
for its striped locks.  All index state is guarded by one internal
re-entrant lock, so concurrent readers, a staging repack and a stats
snapshot can share a store safely.
"""

from __future__ import annotations

import hashlib
import pickle
import threading
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, Sequence

from ..delta.base import Delta, payload_size
from ..exceptions import ObjectNotFoundError
from ..obs.metrics import NULL_INSTRUMENT, log_once
from .backends import FilesystemBackend, StorageBackend, open_backend

__all__ = ["StoredObject", "ObjectStore", "ObjectMeta", "ChainStats"]


@dataclass(frozen=True)
class StoredObject:
    """One object in the store.

    ``kind`` is ``"full"`` or ``"delta"``.  For delta objects ``base_id``
    names the object the delta applies to and ``payload`` holds the
    :class:`~repro.delta.base.Delta`; for full objects ``payload`` holds the
    version content itself.
    """

    object_id: str
    kind: str
    payload: Any
    base_id: str | None = None

    @property
    def is_delta(self) -> bool:
        """True for delta objects."""
        return self.kind == "delta"

    def storage_cost(self) -> float:
        """Bytes (abstract units) this object occupies."""
        if self.is_delta:
            delta: Delta = self.payload
            return delta.storage_cost
        return payload_size(self.payload)


@dataclass(frozen=True)
class ObjectMeta:
    """Immutable per-object index entry: costs and the base link.

    ``phi`` is the object's contribution to the Φ chain sum of any chain
    that traverses it (a delta's recreation cost; a full object's size).
    """

    base_id: str | None
    storage_cost: float
    phi: float

    @property
    def is_delta(self) -> bool:
        return self.base_id is not None


class _MeasuredCost:
    """Mutable EWMA cell of one object's measured rebuild seconds."""

    __slots__ = ("seconds", "count")

    def __init__(self, seconds: float) -> None:
        self.seconds = seconds
        self.count = 1


#: EWMA smoothing factor for per-object measured rebuild seconds.
_MEASURED_ALPHA = 0.2


@dataclass(frozen=True)
class ChainStats:
    """Aggregate pricing of one delta chain, keyed by its tip object.

    ``phi_total`` is exactly the recreation cost a cold checkout of the
    tip pays (the paper's Φ chain sum); ``num_deltas`` the applications it
    performs; ``root_id`` the chain's full object — the serving layer's
    lock-striping key.
    """

    root_id: str
    length: int
    num_deltas: int
    phi_total: float


class ObjectStore:
    """A content-addressed store for full and delta objects.

    ``backend`` accepts a :class:`~repro.storage.backends.StorageBackend`
    instance or a spec string (``memory://``, ``file://PATH``,
    ``zip://PATH``); ``directory`` is legacy sugar for ``file://directory``.
    """

    def __init__(
        self,
        directory: str | None = None,
        *,
        backend: str | StorageBackend | None = None,
    ) -> None:
        if directory is not None and backend is not None:
            raise ValueError("pass either 'directory' or 'backend', not both")
        if directory is not None:
            backend = FilesystemBackend(directory)
        self.backend = open_backend(backend)
        # The incremental cost index: object id -> ObjectMeta, filled on
        # every write and on any read that touches the object anyway, plus
        # memoized per-tip ChainStats (chains are immutable under content
        # addressing, so a computed total never needs invalidation — only
        # removal).  The lock keeps the index coherent when an online
        # repack stages writes while request threads resolve chains and a
        # stats snapshot totals storage.
        self._meta: dict[str, ObjectMeta] = {}
        self._chain_stats: dict[str, ChainStats] = {}
        # Reverse base links: base object id -> ids of the indexed deltas
        # stored directly against it.  A node with two or more children is
        # a *fork point*; subtree_stripe_key() uses this to key striped
        # locks on the deepest fork's branches instead of the chain root,
        # so fork-fan graphs stop serializing on their common ancestor.
        self._children: dict[str, set[str]] = {}
        # The measured side of the cost index: per-object EWMA of actual
        # rebuild seconds (fetch + delta apply), recorded by replay paths,
        # plus running totals that fit a global seconds-per-Φ rate.  Like
        # the Φ index it is answered with pure dictionary walks.
        self._observed: dict[str, _MeasuredCost] = {}
        self._apply_seconds_total = 0.0
        self._apply_phi_total = 0.0
        self._apply_observations = 0
        self._index_lock = threading.RLock()
        # Metric instruments default to shared no-ops until bind_metrics()
        # swaps in live counters, so an unbound store pays one no-op call.
        self._op_get = NULL_INSTRUMENT
        self._op_put = NULL_INSTRUMENT
        self._op_get_many = NULL_INSTRUMENT
        self._op_delete = NULL_INSTRUMENT
        self._op_errors = NULL_INSTRUMENT

    def bind_metrics(self, registry) -> None:
        """Attach per-scheme backend op/error counters from *registry*."""
        scheme = getattr(self.backend, "scheme", "unknown")
        ops = registry.counter(
            "repro_backend_ops_total",
            "Backend operations by scheme and operation.",
            ("scheme", "op"),
        )
        self._op_get = ops.labels(scheme, "get")
        self._op_put = ops.labels(scheme, "put")
        self._op_get_many = ops.labels(scheme, "get_many")
        self._op_delete = ops.labels(scheme, "delete")
        self._op_errors = registry.counter(
            "repro_backend_errors_total",
            "Backend read/write errors (misses excluded) by scheme.",
            ("scheme",),
        ).labels(scheme)
        # Backends with their own instruments (e.g. the remote client's
        # retry counter) bind to the same registry.
        binder = getattr(self.backend, "bind_metrics", None)
        if binder is not None:
            binder(registry)

    # ------------------------------------------------------------------ #
    # writing
    # ------------------------------------------------------------------ #
    def put_full(self, payload: Any) -> str:
        """Store a full payload; return its object id."""
        object_id = self._digest(("full", payload))
        if object_id not in self.backend:
            self._store(StoredObject(object_id=object_id, kind="full", payload=payload))
        return object_id

    def put_delta(self, base_id: str, delta: Delta) -> str:
        """Store a delta applying to ``base_id``; return its object id."""
        if base_id not in self.backend:
            raise ObjectNotFoundError(base_id)
        object_id = self._digest(("delta", base_id, delta.operations))
        if object_id not in self.backend:
            self._store(
                StoredObject(
                    object_id=object_id, kind="delta", payload=delta, base_id=base_id
                )
            )
        return object_id

    def remove(self, object_id: str) -> None:
        """Remove an object (no error if absent).  Used by the re-packer."""
        self._op_delete.inc()
        self.backend.delete(object_id)
        with self._index_lock:
            self._observed.pop(object_id, None)
            self._children.pop(object_id, None)
            meta = self._meta.pop(object_id, None)
            if meta is not None:
                # Chain totals memoized for *descendant* tips route through
                # the removed object; there is no reverse index to find
                # them, so drop the whole memo — per-object metadata stays,
                # and live tips rebuild their totals with dictionary walks.
                self._chain_stats.clear()
                if meta.base_id is not None:
                    siblings = self._children.get(meta.base_id)
                    if siblings is not None:
                        siblings.discard(object_id)
                        if not siblings:
                            del self._children[meta.base_id]

    # ------------------------------------------------------------------ #
    # reading
    # ------------------------------------------------------------------ #
    def get(self, object_id: str) -> StoredObject:
        """Fetch an object by id (recording its index entry as a side effect)."""
        self._op_get.inc()
        try:
            obj = self.backend.get(object_id)
        except KeyError:
            raise ObjectNotFoundError(
                f"object {object_id!r} is not in the store (backend "
                f"{self.backend.spec()!r})"
            ) from None
        except Exception as exc:
            # A miss is a KeyError; anything else is a real backend failure
            # worth a counter and (once) a log line before it propagates.
            self._op_errors.inc()
            log_once(
                "objects:get:%s" % self.backend.spec(),
                "backend read failed on %s: %s: %s",
                self.backend.spec(),
                type(exc).__name__,
                exc,
            )
            raise
        self._note(obj)
        return obj

    def __contains__(self, object_id: str) -> bool:
        return object_id in self.backend

    def __len__(self) -> int:
        return len(self.backend)

    def __iter__(self) -> Iterator[StoredObject]:
        return (self.backend.get(key) for key in list(self.backend.keys()))

    def object_ids(self) -> list[str]:
        """Ids of every object currently stored."""
        return list(self.backend.keys())

    def total_storage_cost(self) -> float:
        """Sum of the storage costs of every object currently stored."""
        # Reconcile against the backend's key set so writes/removals made
        # through another store sharing the same backend are picked up:
        # listing keys is cheap, and under content addressing a present key
        # can never change cost, so only added/removed ids need reads.
        keys = set(self.backend.keys())
        with self._index_lock:
            candidates = [oid for oid in self._meta if oid not in keys]
        # Re-probe each prune candidate before evicting it: an object
        # written after the keys() snapshot (a repack staging concurrently
        # with this total) is absent from the snapshot but very much alive,
        # and dropping its index entry would force the swap to re-read it
        # inside the exclusive barrier.
        for object_id in candidates:
            if object_id in self.backend:
                keys.add(object_id)
                continue
            with self._index_lock:
                if self._meta.pop(object_id, None) is not None:
                    self._chain_stats.clear()  # see remove()
        with self._index_lock:
            missing = keys - self._meta.keys()
        for object_id in missing:
            try:
                self.get(object_id)
            except ObjectNotFoundError:
                keys.discard(object_id)  # deleted by a peer mid-scan
        with self._index_lock:
            return float(
                sum(
                    self._meta[oid].storage_cost
                    for oid in keys
                    if oid in self._meta
                )
            )

    def get_many(self, object_ids: list[str]) -> dict[str, StoredObject]:
        """Fetch several objects at once; absent ids are simply omitted.

        Local backends loop over single gets; a chain-following remote
        backend answers the whole request in one round trip.
        """
        self._op_get_many.inc()
        found = self.backend.get_many(object_ids)
        self.note_objects(found.values())
        return found

    def delta_chain(self, object_id: str) -> list[StoredObject]:
        """The chain of objects needed to materialize ``object_id``.

        The returned list starts at a full object and ends at the requested
        object; a full object's chain is just itself.  On a chain-following
        remote backend the whole chain is fetched in a single round trip
        (the server walks the base links) instead of one request per object.
        """
        if getattr(self.backend, "follows_chains", False):
            return self._remote_delta_chain(object_id)
        chain: list[StoredObject] = []
        current = self.get(object_id)
        seen: set[str] = set()
        while True:
            chain.append(current)
            if not current.is_delta:
                break
            if current.object_id in seen:
                raise ObjectNotFoundError(
                    f"delta chain of {object_id!r} contains a cycle"
                )
            seen.add(current.object_id)
            current = self.get(current.base_id)  # type: ignore[arg-type]
        chain.reverse()
        return chain

    def _remote_delta_chain(self, object_id: str) -> list[StoredObject]:
        """One-round-trip chain fetch against a chain-following backend."""
        objects = self.backend.get_many([object_id], follow_bases=True)
        self.note_objects(objects.values())
        chain: list[StoredObject] = []
        seen: set[str] = set()
        current_id: str | None = object_id
        while current_id is not None:
            obj = objects.get(current_id)
            if obj is None:
                # The server's response was incomplete (or the tip object is
                # absent); fall back to a single fetch so the error surfaces
                # with the store's usual translation.
                obj = self.get(current_id)
            chain.append(obj)
            if not obj.is_delta:
                break
            if obj.object_id in seen:
                raise ObjectNotFoundError(
                    f"delta chain of {object_id!r} contains a cycle"
                )
            seen.add(obj.object_id)
            current_id = obj.base_id
        chain.reverse()
        return chain

    # ------------------------------------------------------------------ #
    # the incremental cost index
    # ------------------------------------------------------------------ #
    def note_objects(self, objects: Iterable[StoredObject]) -> None:
        """Record index entries for objects fetched through other paths."""
        for obj in objects:
            self._note(obj)

    def cached_chain_ids(self, object_id: str) -> tuple[str, ...] | None:
        """The root-first chain of ``object_id`` if the index can answer it
        without any backend read; ``None`` when some link is unknown."""
        with self._index_lock:
            reversed_chain: list[str] = []
            current_id: str | None = object_id
            while current_id is not None:
                meta = self._meta.get(current_id)
                if meta is None or len(reversed_chain) > len(self._meta):
                    return None
                reversed_chain.append(current_id)
                current_id = meta.base_id
        reversed_chain.reverse()
        return tuple(reversed_chain)

    def chain_ids(self, object_id: str) -> tuple[str, ...]:
        """The root-first id chain of ``object_id``, from the index.

        Unknown links are backfilled by reading the object (one multiget
        for the whole remaining segment on a chain-following remote
        backend); links already indexed cost a dictionary lookup only.
        """
        follows = getattr(self.backend, "follows_chains", False)
        reversed_chain: list[str] = []
        seen: set[str] = set()
        current_id: str | None = object_id
        while current_id is not None:
            with self._index_lock:
                meta = self._meta.get(current_id)
            if meta is None:
                if follows:
                    # One round trip resolves the whole remaining segment.
                    self.note_objects(
                        self.backend.get_many([current_id], follow_bases=True).values()
                    )
                    with self._index_lock:
                        meta = self._meta.get(current_id)
                if meta is None:
                    self.get(current_id)  # raises ObjectNotFoundError if absent
                    with self._index_lock:
                        meta = self._meta[current_id]
            if current_id in seen:
                raise ObjectNotFoundError(
                    f"delta chain of {object_id!r} contains a cycle"
                )
            seen.add(current_id)
            reversed_chain.append(current_id)
            current_id = meta.base_id
        reversed_chain.reverse()
        return tuple(reversed_chain)

    def chain_stats(self, object_id: str) -> ChainStats:
        """Aggregate Φ/delta-count pricing of ``object_id``'s chain.

        Memoized per tip (and for every prefix of the walked chain, since
        each prefix is a chain in its own right); content addressing makes
        the memo permanently valid until the object is removed.
        """
        with self._index_lock:
            cached = self._chain_stats.get(object_id)
        if cached is not None:
            return cached
        ids = self.chain_ids(object_id)
        with self._index_lock:
            phi_total = 0.0
            num_deltas = 0
            stats = None
            for index, oid in enumerate(ids):
                meta = self._meta.get(oid)
                if meta is None:  # pragma: no cover - peer removed mid-walk
                    raise ObjectNotFoundError(oid)
                phi_total += meta.phi
                if meta.is_delta:
                    num_deltas += 1
                stats = ChainStats(
                    root_id=ids[0],
                    length=index + 1,
                    num_deltas=num_deltas,
                    phi_total=phi_total,
                )
                self._chain_stats.setdefault(oid, stats)
            assert stats is not None
            return stats

    def chain_root(self, object_id: str) -> str:
        """Root full object of ``object_id``'s chain (the lock-striping key)."""
        return self.chain_stats(object_id).root_id

    def meta(self, object_id: str) -> ObjectMeta | None:
        """The index entry of ``object_id``, or ``None`` when never seen.

        A pure dictionary lookup — never reads the backend.  ``None`` does
        *not* mean the object is absent from the store, only that no write
        or read has indexed it yet.
        """
        with self._index_lock:
            return self._meta.get(object_id)

    def marginal_chain_cost(
        self, object_id: str, cached: Callable[[str], bool]
    ) -> float | None:
        """Φ cost of rebuilding ``object_id`` given ``cached`` ancestors.

        Walks the base links of the index only (no backend read): the sum
        of Φ contributions from ``object_id`` down to — exclusive — its
        deepest ancestor for which ``cached`` returns true (or the chain
        root when none is).  This is the *marginal* recreation cost of one
        cache entry: what a request would re-pay if exactly this payload
        were evicted while the rest of the cache stayed put — the metric
        the warm cost model prices requests with and the cost-aware cache
        ranks eviction victims by.  Returns ``None`` when some link is not
        indexed yet (callers fall back to plain LRU ordering).

        ``cached`` may take its own lock; the index lock is never held
        across the callback, so a cache holding its lock while scoring
        victims cannot deadlock against index writers.
        """
        cost = 0.0
        current: str | None = object_id
        seen: set[str] = set()
        while current is not None:
            meta = self.meta(current)
            if meta is None or current in seen:
                return None
            seen.add(current)
            cost += meta.phi
            current = meta.base_id
            if current is not None and cached(current):
                break
        return cost

    # -- the measured Δ/Φ model ---------------------------------------- #

    def observe_apply(self, object_id: str, seconds: float) -> None:
        """Record the measured wall seconds one replay hop actually took.

        Fed by the replay paths every time ``object_id`` is fetched and
        (for deltas) applied, so the index accumulates a *measured* cost
        model next to the modeled Φ one — maintained incrementally at
        materialize time, never by scanning payloads.
        """
        seconds = float(seconds)
        if seconds < 0.0:
            return
        with self._index_lock:
            cell = self._observed.get(object_id)
            if cell is None:
                self._observed[object_id] = _MeasuredCost(seconds)
            else:
                cell.seconds += _MEASURED_ALPHA * (seconds - cell.seconds)
                cell.count += 1
            self._apply_observations += 1
            self._apply_seconds_total += seconds
            meta = self._meta.get(object_id)
            if meta is not None:
                self._apply_phi_total += meta.phi

    def observed_apply_seconds(self, object_id: str) -> float | None:
        """EWMA of measured rebuild seconds for one object, or ``None``."""
        with self._index_lock:
            cell = self._observed.get(object_id)
            return cell.seconds if cell is not None else None

    def seconds_per_phi(self) -> float | None:
        """Fitted seconds-per-Φ-unit rate, or ``None`` before any sample.

        The conversion factor between the model's abstract Φ units and
        measured wall time: total observed rebuild seconds over the total
        Φ those hops were priced at.
        """
        with self._index_lock:
            if self._apply_phi_total <= 0.0:
                return None
            return self._apply_seconds_total / self._apply_phi_total

    def measured_chain_seconds(
        self, object_id: str, cached: Callable[[str], bool] | None = None
    ) -> float | None:
        """Measured rebuild seconds of ``object_id``'s chain — index only.

        Walks base links exactly like :meth:`marginal_chain_cost` (down to
        the deepest ``cached`` ancestor when given, else to the root),
        summing each hop's observed EWMA seconds and falling back to
        ``seconds_per_phi() * phi`` for hops never measured.  Returns
        ``None`` when a link is unindexed or no rate has been fitted yet.
        No payload is read.
        """
        rate = self.seconds_per_phi()
        total = 0.0
        current: str | None = object_id
        seen: set[str] = set()
        while current is not None:
            meta = self.meta(current)
            if meta is None or current in seen:
                return None
            seen.add(current)
            observed = self.observed_apply_seconds(current)
            if observed is not None:
                total += observed
            elif rate is not None:
                total += rate * meta.phi
            else:
                return None
            current = meta.base_id
            if current is not None and cached is not None and cached(current):
                break
        return total

    def measured_cost_model(self) -> dict[str, float | int | None]:
        """Snapshot of the measured model for stats/decision records."""
        with self._index_lock:
            rate = (
                self._apply_seconds_total / self._apply_phi_total
                if self._apply_phi_total > 0.0
                else None
            )
            return {
                "observed_objects": len(self._observed),
                "observations": self._apply_observations,
                "seconds_total": self._apply_seconds_total,
                "seconds_per_phi": rate,
            }

    def cached_chain_root(self, object_id: str) -> str | None:
        """``object_id``'s chain root in O(1) from the stats memo, or ``None``.

        Never walks or fetches anything — a single locked dictionary
        lookup, cheap enough for the per-request hot path (every
        materialization memoizes its tip's stats, so only the very first
        request for a chain misses).
        """
        with self._index_lock:
            stats = self._chain_stats.get(object_id)
        return stats.root_id if stats is not None else None

    def subtree_stripe_key(self, object_id: str) -> str | None:
        """Deepest-shared-ancestor stripe key for ``object_id``, or ``None``.

        The serving layer's striped locks need a key that groups requests
        which actually contend (they replay overlapping chain suffixes)
        while separating requests that do not.  Keying on the chain *root*
        serializes every tip of a fork-heavy graph on its common ancestor;
        this method instead walks the indexed chain root-first and keys on
        the chain node just **below the deepest fork point** (the deepest
        ancestor with two or more indexed children) — i.e. the root of the
        tip's own subtree.  Linear chains degenerate to their root, exactly
        the old behavior.  Pure dictionary walks, no backend read; returns
        ``None`` when some link is not indexed yet (callers fall back to
        the object id itself, as with :meth:`cached_chain_root`).
        """
        chain = self.cached_chain_ids(object_id)
        if chain is None:
            return None
        key = chain[0]
        with self._index_lock:
            for index in range(len(chain) - 1):
                children = self._children.get(chain[index])
                if children is not None and len(children) >= 2:
                    key = chain[index + 1]
        return key

    def prime_chains(self, object_ids: Sequence[str]) -> dict[str, StoredObject]:
        """Resolve many chains in one exchange on a remote backend.

        For a chain-following backend, every tip the index cannot already
        resolve is fetched — whole chains included — in a single
        ``multiget`` round trip; the fetched objects are returned so a
        batch replay can consume them without re-fetching.  Local backends
        return ``{}`` (per-object reads are already as cheap as it gets).
        """
        if not getattr(self.backend, "follows_chains", False):
            return {}
        unknown = [oid for oid in object_ids if self.cached_chain_ids(oid) is None]
        if not unknown:
            return {}
        objects = self.backend.get_many(unknown, follow_bases=True)
        self.note_objects(objects.values())
        return objects

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    @staticmethod
    def _digest(value: Any) -> str:
        data = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        return hashlib.sha256(data).hexdigest()

    def _store(self, obj: StoredObject) -> None:
        self._op_put.inc()
        try:
            self.backend.put(obj.object_id, obj)
        except BaseException:
            # A put that died mid-write may have left a torn value under
            # the key (backends without write-then-rename semantics).  A
            # content-addressed key must either hold the complete object or
            # nothing: scrub it so a failed write can never be served later
            # as a corrupt payload, and never index what was not stored.
            self._op_errors.inc()
            try:
                self.backend.delete(obj.object_id)
            except Exception as scrub_exc:
                # The original failure is the one worth raising, but a
                # failed scrub means a possibly-torn key survived — that
                # must not stay invisible.
                self._op_errors.inc()
                log_once(
                    "objects:scrub:%s" % self.backend.spec(),
                    "scrubbing a failed put of %s on %s also failed (%s: %s); "
                    "the key may hold a torn value",
                    obj.object_id,
                    self.backend.spec(),
                    type(scrub_exc).__name__,
                    scrub_exc,
                )
            raise
        self._note(obj)

    def _note(self, obj: StoredObject) -> None:
        """Record ``obj``'s immutable index entry (idempotent)."""
        with self._index_lock:
            if obj.object_id in self._meta:
                return
        if obj.is_delta:
            delta: Delta = obj.payload
            meta = ObjectMeta(
                base_id=obj.base_id,
                storage_cost=delta.storage_cost,
                phi=delta.recreation_cost,
            )
        else:
            cost = payload_size(obj.payload)
            meta = ObjectMeta(base_id=None, storage_cost=cost, phi=cost)
        with self._index_lock:
            stored = self._meta.setdefault(obj.object_id, meta)
            if stored is meta and meta.base_id is not None:
                self._children.setdefault(meta.base_id, set()).add(obj.object_id)
