"""Content-addressed object store.

The prototype version manager persists two kinds of objects:

* *full objects* — a complete version payload, and
* *delta objects* — a :class:`~repro.delta.base.Delta` plus the id of the
  base object it applies to.

Objects are addressed by a SHA-256 digest of their serialized form, so
identical payloads are automatically deduplicated (the same mechanism Git
and the archival systems surveyed in Section 6 rely on).  The store is
in-memory by default but can be given a directory to persist objects to
disk; both modes expose identical behavior, which keeps the repository and
planner code independent of where bytes actually live.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from dataclasses import dataclass
from typing import Any, Iterator

from ..delta.base import Delta, payload_size
from ..exceptions import ObjectNotFoundError

__all__ = ["StoredObject", "ObjectStore"]


@dataclass(frozen=True)
class StoredObject:
    """One object in the store.

    ``kind`` is ``"full"`` or ``"delta"``.  For delta objects ``base_id``
    names the object the delta applies to and ``payload`` holds the
    :class:`~repro.delta.base.Delta`; for full objects ``payload`` holds the
    version content itself.
    """

    object_id: str
    kind: str
    payload: Any
    base_id: str | None = None

    @property
    def is_delta(self) -> bool:
        """True for delta objects."""
        return self.kind == "delta"

    def storage_cost(self) -> float:
        """Bytes (abstract units) this object occupies."""
        if self.is_delta:
            delta: Delta = self.payload
            return delta.storage_cost
        return payload_size(self.payload)


class ObjectStore:
    """A content-addressed store for full and delta objects."""

    def __init__(self, directory: str | None = None) -> None:
        self._objects: dict[str, StoredObject] = {}
        self._directory = directory
        if directory is not None:
            os.makedirs(directory, exist_ok=True)
            self._load_from_disk()

    # ------------------------------------------------------------------ #
    # writing
    # ------------------------------------------------------------------ #
    def put_full(self, payload: Any) -> str:
        """Store a full payload; return its object id."""
        object_id = self._digest(("full", payload))
        if object_id not in self._objects:
            self._store(StoredObject(object_id=object_id, kind="full", payload=payload))
        return object_id

    def put_delta(self, base_id: str, delta: Delta) -> str:
        """Store a delta applying to ``base_id``; return its object id."""
        if base_id not in self._objects:
            raise ObjectNotFoundError(base_id)
        object_id = self._digest(("delta", base_id, delta.operations))
        if object_id not in self._objects:
            self._store(
                StoredObject(
                    object_id=object_id, kind="delta", payload=delta, base_id=base_id
                )
            )
        return object_id

    def remove(self, object_id: str) -> None:
        """Remove an object (no error if absent).  Used by the re-packer."""
        self._objects.pop(object_id, None)
        if self._directory is not None:
            path = self._path(object_id)
            if os.path.exists(path):
                os.remove(path)

    # ------------------------------------------------------------------ #
    # reading
    # ------------------------------------------------------------------ #
    def get(self, object_id: str) -> StoredObject:
        """Fetch an object by id."""
        try:
            return self._objects[object_id]
        except KeyError:
            raise ObjectNotFoundError(object_id) from None

    def __contains__(self, object_id: str) -> bool:
        return object_id in self._objects

    def __len__(self) -> int:
        return len(self._objects)

    def __iter__(self) -> Iterator[StoredObject]:
        return iter(list(self._objects.values()))

    def total_storage_cost(self) -> float:
        """Sum of the storage costs of every object currently stored."""
        return float(sum(obj.storage_cost() for obj in self._objects.values()))

    def delta_chain(self, object_id: str) -> list[StoredObject]:
        """The chain of objects needed to materialize ``object_id``.

        The returned list starts at a full object and ends at the requested
        object; a full object's chain is just itself.
        """
        chain: list[StoredObject] = []
        current = self.get(object_id)
        seen: set[str] = set()
        while True:
            chain.append(current)
            if not current.is_delta:
                break
            if current.object_id in seen:
                raise ObjectNotFoundError(
                    f"delta chain of {object_id!r} contains a cycle"
                )
            seen.add(current.object_id)
            current = self.get(current.base_id)  # type: ignore[arg-type]
        chain.reverse()
        return chain

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    @staticmethod
    def _digest(value: Any) -> str:
        data = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        return hashlib.sha256(data).hexdigest()

    def _store(self, obj: StoredObject) -> None:
        self._objects[obj.object_id] = obj
        if self._directory is not None:
            with open(self._path(obj.object_id), "wb") as handle:
                pickle.dump(obj, handle, protocol=pickle.HIGHEST_PROTOCOL)

    def _path(self, object_id: str) -> str:
        assert self._directory is not None
        return os.path.join(self._directory, f"{object_id}.obj")

    def _load_from_disk(self) -> None:
        assert self._directory is not None
        for name in os.listdir(self._directory):
            if not name.endswith(".obj"):
                continue
            with open(os.path.join(self._directory, name), "rb") as handle:
                obj: StoredObject = pickle.load(handle)
            self._objects[obj.object_id] = obj
