"""Concurrency primitives for parallel serving.

The serving layer used to funnel every materialization through one global
lock, so wall-clock latency under concurrent load was bounded by a single
request at a time no matter how many chains the requests touched.  Two
small primitives replace that funnel:

* :class:`StripedLockManager` — a fixed array of re-entrant locks with a
  stable key→stripe mapping.  The serving layer keys stripes by the
  **subtree stripe key** of a delta chain (see
  :func:`subtree_stripe_keys` and ``ObjectStore.subtree_stripe_key``):
  the chain node just below the deepest fork point, which degenerates to
  the chain root for linear chains.  Checkouts of independent chains —
  and of *disjoint subtrees of one fork-heavy root* — proceed in
  parallel, while two requests replaying the same subtree still
  serialize (the second finds the first's work in the warm cache instead
  of duplicating it).  ``num_stripes=1`` degenerates to the old global
  lock, which is exactly how the benchmark measures the single-lock
  baseline.
* :class:`EpochCoordinator` — a writer-preference read/write lock.
  Checkouts (and every other request-path read) enter *shared* mode and
  run concurrently; structural mutations — commits, the repack swap, raw
  backend writes from peers — take a brief *exclusive* barrier.  The
  coordinator counts completed exclusive sections (``exclusive_epochs``)
  and exposes :attr:`EpochCoordinator.exclusive_held` so tests can assert
  what work happens inside the barrier.

Lock ordering (outermost first) across the serving stack: write gate →
repacker lock → coordinator → chain stripe → state/cache/index locks.  No
component acquires leftward while holding rightward, and no thread ever
holds two stripes at once, which is what keeps the whole arrangement
deadlock-free.
"""

from __future__ import annotations

import threading
import time
import zlib
from contextlib import contextmanager
from typing import Callable, Iterator, Optional

from typing import Mapping, Sequence

from ..obs.metrics import NULL_INSTRUMENT

__all__ = ["StripedLockManager", "EpochCoordinator", "subtree_stripe_keys"]


def subtree_stripe_keys(
    chains: Mapping[str, Sequence[str]]
) -> dict[str, str]:
    """Batch-local stripe key per requested tip, from root-first chains.

    Builds the union forest of the given chains and keys every tip by the
    chain node just **below the deepest fork point** on its path — the
    root of the tip's own subtree within this batch.  Tips in disjoint
    subtrees of a shared root get distinct keys (their replays proceed in
    parallel under different stripe locks / pool tasks), while tips whose
    chains genuinely overlap share a key and amortize the shared prefix
    through one group's cache.  A batch of linear, unrelated chains
    degenerates to keying by chain root, the pre-subtree behavior.

    Content addressing keeps this safe: when two groups race on a prefix
    *above* their fork point, each replays it independently and produces
    byte-identical intermediate payloads — duplicated work at worst,
    never divergent results.
    """
    children: dict[str | None, set[str]] = {}
    for chain in chains.values():
        parent: str | None = None
        for object_id in chain:
            children.setdefault(parent, set()).add(object_id)
            parent = object_id
    keys: dict[str, str] = {}
    for tip, chain in chains.items():
        key = chain[0]
        for index in range(len(chain) - 1):
            if len(children.get(chain[index], ())) >= 2:
                key = chain[index + 1]
        keys[tip] = key
    return keys


class StripedLockManager:
    """A fixed pool of re-entrant locks addressed by a stable key hash.

    Keys hashing to the same stripe share a lock — occasional false
    sharing between unrelated chains only costs a little parallelism,
    never correctness.  The hash is ``crc32`` of the key (not Python's
    salted ``hash``), so a key maps to the same stripe in every thread.
    """

    def __init__(self, num_stripes: int = 64) -> None:
        if num_stripes < 1:
            raise ValueError("a lock manager needs at least one stripe")
        self.num_stripes = int(num_stripes)
        self._locks = [threading.RLock() for _ in range(self.num_stripes)]
        self._timed = False
        self._wait_metric = NULL_INSTRUMENT

    def bind_metrics(self, registry) -> None:
        """Record stripe-lock wait time into *registry* on every acquire."""
        if not getattr(registry, "enabled", False):
            return
        self._wait_metric = registry.histogram(
            "repro_lock_wait_seconds",
            "Time spent blocked acquiring a serving-layer lock.",
            ("lock",),
        ).labels("chain_stripe")
        self._timed = True

    def stripe_for(self, key: str) -> int:
        """Index of the stripe responsible for ``key`` (stable per run)."""
        return zlib.crc32(key.encode("utf-8")) % self.num_stripes

    def lock_for(self, key: str) -> threading.RLock:
        """The lock guarding ``key``'s stripe."""
        return self._locks[self.stripe_for(key)]

    @contextmanager
    def holding(
        self, key: str, observer: Optional[Callable[[float], None]] = None
    ) -> Iterator[None]:
        """Context manager: hold ``key``'s stripe lock for the block.

        When metrics are bound (or a per-request *observer* is supplied,
        e.g. a trace span's ``add_lock_wait``), the time spent blocked
        before entry is measured; otherwise the acquire is untimed so the
        disabled path costs one boolean check.
        """
        lock = self.lock_for(key)
        if self._timed or observer is not None:
            started = time.perf_counter()
            lock.acquire()
            waited = time.perf_counter() - started
            self._wait_metric.observe(waited)
            if observer is not None:
                observer(waited)
        else:
            lock.acquire()
        try:
            yield
        finally:
            lock.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<StripedLockManager stripes={self.num_stripes}>"


class EpochCoordinator:
    """A writer-preference read/write lock with an epoch counter.

    Any number of *shared* holders run concurrently; an *exclusive* holder
    runs alone.  Waiting exclusives block new shared entrants (writer
    preference), so the repack swap's barrier is bounded by the in-flight
    reads at the moment it asks — a steady stream of checkouts can never
    starve it.  Neither mode is re-entrant: a thread must not nest
    acquisitions (the serving layer never does — see the lock-ordering
    note in the module docstring).

    ``exclusive_epochs`` counts completed exclusive sections; it advances
    under the internal mutex, so a reader that saw epoch *n* before and
    after a block of work knows no exclusive section interleaved.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0
        self._exclusive_epochs = 0
        self._timed = False
        self._shared_wait = NULL_INSTRUMENT
        self._exclusive_wait = NULL_INSTRUMENT
        self._exclusive_hold = NULL_INSTRUMENT

    def bind_metrics(self, registry) -> None:
        """Record coordinator wait and barrier-hold time into *registry*."""
        if not getattr(registry, "enabled", False):
            return
        waits = registry.histogram(
            "repro_lock_wait_seconds",
            "Time spent blocked acquiring a serving-layer lock.",
            ("lock",),
        )
        self._shared_wait = waits.labels("coordinator_shared")
        self._exclusive_wait = waits.labels("coordinator_exclusive")
        self._exclusive_hold = registry.histogram(
            "repro_exclusive_barrier_seconds",
            "Wall time the exclusive barrier was held (commits, swaps).",
        )
        self._timed = True

    # ------------------------------------------------------------------ #
    # shared (read) side
    # ------------------------------------------------------------------ #
    def acquire_shared(self) -> None:
        started = time.perf_counter() if self._timed else 0.0
        with self._cond:
            while self._writer or self._writers_waiting:
                self._cond.wait()
            self._readers += 1
        if self._timed:
            self._shared_wait.observe(time.perf_counter() - started)

    def release_shared(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    @contextmanager
    def shared(self) -> Iterator[None]:
        """Hold the coordinator in shared mode for the block."""
        self.acquire_shared()
        try:
            yield
        finally:
            self.release_shared()

    # ------------------------------------------------------------------ #
    # exclusive (write) side
    # ------------------------------------------------------------------ #
    def acquire_exclusive(self) -> None:
        started = time.perf_counter() if self._timed else 0.0
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    self._cond.wait()
                self._writer = True
            finally:
                self._writers_waiting -= 1
        if self._timed:
            now = time.perf_counter()
            self._exclusive_wait.observe(now - started)
            self._exclusive_acquired = now

    def release_exclusive(self) -> None:
        if self._timed:
            acquired = getattr(self, "_exclusive_acquired", None)
            if acquired is not None:
                self._exclusive_hold.observe(time.perf_counter() - acquired)
        with self._cond:
            self._writer = False
            self._exclusive_epochs += 1
            self._cond.notify_all()

    @contextmanager
    def exclusive(self) -> Iterator[None]:
        """Hold the coordinator in exclusive mode for the block."""
        self.acquire_exclusive()
        try:
            yield
        finally:
            self.release_exclusive()

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def exclusive_held(self) -> bool:
        """True while some thread holds the coordinator exclusively."""
        return self._writer

    @property
    def exclusive_epochs(self) -> int:
        """Number of exclusive sections that have completed."""
        with self._cond:
            return self._exclusive_epochs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<EpochCoordinator readers={self._readers} writer={self._writer} "
            f"epochs={self._exclusive_epochs}>"
        )
