"""The prototype version-management system (DataHub-style).

* :mod:`~repro.storage.backends` — pluggable keyed blob stores
  (``memory://``, ``file://``, ``zip://``, ``shard://``, remote ``http://``)
  the object store delegates to;
* :mod:`~repro.storage.objects` — content-addressed store for full objects
  and deltas, with an incremental cost index (per-chain Φ totals and delta
  counts maintained at commit/repack time);
* :mod:`~repro.storage.concurrency` — striped per-chain locks and the
  epoch read/write coordinator behind parallel serving;
* :mod:`~repro.storage.materializer` — reconstructs payloads by replaying
  delta chains;
* :mod:`~repro.storage.batch` — batch checkout engine that amortizes shared
  chain prefixes across many concurrent checkouts;
* :mod:`~repro.storage.repository` — commit / checkout / branch / merge,
  plus the bridge to the optimization layer (cost-model measurement and
  plan-driven repacking);
* :mod:`~repro.storage.planner` — applies a storage plan to the object
  store (streaming, bounded-memory);
* :mod:`~repro.storage.repack` — the online re-packer: stages a new
  encoding while readers keep serving, then swaps epochs atomically;
* :mod:`~repro.storage.workload_log` — persistent per-version access
  frequencies that feed the workload-aware optimizers with real traffic;
* :mod:`~repro.storage.catalog` — the ``sqlite://`` transactional metadata
  catalog (version graph, branch heads, epoch snapshots, workload counters
  and controller state in one WAL-mode database that several processes can
  share).
"""

from .backends import (
    BackendSpecError,
    CompressedFilesystemBackend,
    FilesystemBackend,
    MemoryBackend,
    ShardedBackend,
    StorageBackend,
    open_backend,
    register_backend,
)
from .batch import BatchItem, BatchMaterializer, BatchResult, WarmChainCost
from .catalog import CatalogWorkloadLog, MetadataCatalog, SQLiteBackend
from .concurrency import EpochCoordinator, StripedLockManager
from .materializer import LRUPayloadCache, MaterializationResult, Materializer
from .objects import ChainStats, ObjectMeta, ObjectStore, StoredObject
from .planner import apply_plan, plan_order
from .repack import (
    AdaptiveRepackController,
    OnlineRepacker,
    StagedRepack,
    estimate_repack_cost,
    expected_workload_cost,
    expected_workload_costs,
)
from .repository import CheckoutStats, Repository
from .workload_log import WorkloadLog, frequency_drift

__all__ = [
    "BackendSpecError",
    "CompressedFilesystemBackend",
    "FilesystemBackend",
    "MemoryBackend",
    "ShardedBackend",
    "StorageBackend",
    "open_backend",
    "register_backend",
    "BatchItem",
    "BatchMaterializer",
    "BatchResult",
    "WarmChainCost",
    "CatalogWorkloadLog",
    "MetadataCatalog",
    "SQLiteBackend",
    "EpochCoordinator",
    "StripedLockManager",
    "LRUPayloadCache",
    "MaterializationResult",
    "Materializer",
    "ChainStats",
    "ObjectMeta",
    "ObjectStore",
    "StoredObject",
    "apply_plan",
    "plan_order",
    "AdaptiveRepackController",
    "OnlineRepacker",
    "StagedRepack",
    "estimate_repack_cost",
    "expected_workload_cost",
    "expected_workload_costs",
    "CheckoutStats",
    "Repository",
    "WorkloadLog",
    "frequency_drift",
]
