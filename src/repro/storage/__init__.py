"""The prototype version-management system (DataHub-style).

* :mod:`~repro.storage.objects` — content-addressed store for full objects
  and deltas;
* :mod:`~repro.storage.materializer` — reconstructs payloads by replaying
  delta chains;
* :mod:`~repro.storage.repository` — commit / checkout / branch / merge,
  plus the bridge to the optimization layer (cost-model measurement and
  plan-driven repacking);
* :mod:`~repro.storage.planner` — applies a storage plan to the object
  store.
"""

from .materializer import MaterializationResult, Materializer
from .objects import ObjectStore, StoredObject
from .planner import apply_plan, plan_order
from .repository import CheckoutStats, Repository

__all__ = [
    "MaterializationResult",
    "Materializer",
    "ObjectStore",
    "StoredObject",
    "apply_plan",
    "plan_order",
    "CheckoutStats",
    "Repository",
]
