"""Fault-injection helpers for exercising storage failure paths.

Real storage fails: disks fill up, processes die mid-write, NFS flakes.
The recovery guarantees this package makes — an aborted repack staging
leaks nothing, a torn object is scrubbed rather than served, a crashed
append loses at most one workload-log line — are only guarantees if they
are *tested*, which needs failures that arrive deterministically at a
chosen operation.  :class:`FlakyBackend` provides exactly that: it wraps
any :class:`~repro.storage.backends.StorageBackend` and injects
configurable :class:`IOError`\\ s (optionally after a simulated partial
write) on the N-th put or get.

This module lives in the package rather than the test tree because fault
injection is useful beyond unit tests — soak scripts and the CI
fault-injection job drive the same wrapper — and because it must track
the backend interface it wraps.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Any, Callable, Iterator, Sequence

from .backends import StorageBackend

__all__ = ["FlakyBackend", "TornValue", "InjectedFault", "SkewedClock"]


class InjectedFault(IOError):
    """The error :class:`FlakyBackend` raises when a fault triggers."""


class TornValue:
    """A stand-in for a partially-written object.

    When :class:`FlakyBackend` fails a put with ``partial_write=True`` it
    first stores one of these under the key — the moral equivalent of the
    truncated file a crash mid-write leaves behind.  Any code that ends up
    *serving* a :class:`TornValue` has a torn-write recovery bug.
    """

    def __init__(self, key: str) -> None:
        self.key = key

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TornValue key={self.key!r}>"


class FlakyBackend(StorageBackend):
    """Wraps a backend and injects deterministic failures.

    ``fail_puts_after=N`` lets the next ``N`` puts succeed and raises
    :class:`InjectedFault` on every put after them; ``fail_gets_after``
    does the same for gets (``get_many`` counts as one get).  With
    ``partial_write=True`` a failing put first stores a
    :class:`TornValue` under the key before raising — simulating a crash
    that left a truncated object behind.  :meth:`heal` disarms everything;
    ``puts``/``gets`` count *successful* operations (they pause while a
    fault is firing) and ``injected`` counts the failures, surviving
    arm/heal cycles so tests can assert exactly where a failure landed.
    All bookkeeping is thread-safe, so the wrapper can sit under a serving
    stack exercising concurrent requests.

    ``latency_seed``/``latency_max`` arm a *seeded* latency mode: every
    put/get sleeps a deterministic pseudo-random duration drawn from
    ``[0, latency_max)``.  Timing races — a lease expiring while its
    holder is stuck in a slow store operation, a renewal losing to a
    stealer by microseconds — become reproducible in-process instead of
    needing subprocess SIGSTOP choreography: the same seed replays the
    same schedule of delays.
    """

    scheme = "flaky"

    def __init__(
        self,
        child: StorageBackend,
        *,
        fail_puts_after: int | None = None,
        fail_gets_after: int | None = None,
        partial_write: bool = False,
        latency_seed: int | None = None,
        latency_max: float = 0.0,
    ) -> None:
        self.child = child
        self.fail_puts_after = fail_puts_after
        self.fail_gets_after = fail_gets_after
        self.partial_write = partial_write
        if latency_max < 0:
            raise ValueError("latency_max must be non-negative (seconds)")
        self.latency_max = float(latency_max)
        self._latency_rng = (
            random.Random(latency_seed) if latency_seed is not None else None
        )
        self.delays_injected = 0
        self.delay_seconds = 0.0
        self.puts = 0
        self.gets = 0
        self.injected = 0
        self._lock = threading.Lock()

    def _maybe_delay(self) -> None:
        if self._latency_rng is None or self.latency_max <= 0:
            return
        with self._lock:
            delay = self._latency_rng.uniform(0.0, self.latency_max)
            self.delays_injected += 1
            self.delay_seconds += delay
        time.sleep(delay)

    # -- fault control --------------------------------------------------- #
    def heal(self) -> None:
        """Disarm every configured fault (counters keep their values)."""
        with self._lock:
            self.fail_puts_after = None
            self.fail_gets_after = None

    def _should_fail_put(self) -> bool:
        with self._lock:
            if self.fail_puts_after is not None and self.puts >= self.fail_puts_after:
                self.injected += 1
                return True
            self.puts += 1
            return False

    def _should_fail_get(self) -> bool:
        with self._lock:
            if self.fail_gets_after is not None and self.gets >= self.fail_gets_after:
                self.injected += 1
                return True
            self.gets += 1
            return False

    # -- StorageBackend --------------------------------------------------- #
    def put(self, key: str, value: Any) -> None:
        self._maybe_delay()
        if self._should_fail_put():
            if self.partial_write:
                self.child.put(key, TornValue(key))
            raise InjectedFault(f"injected put failure for {key!r}")
        self.child.put(key, value)

    def get(self, key: str) -> Any:
        self._maybe_delay()
        if self._should_fail_get():
            raise InjectedFault(f"injected get failure for {key!r}")
        return self.child.get(key)

    def get_many(self, keys: Sequence[str]) -> dict[str, Any]:
        self._maybe_delay()
        if self._should_fail_get():
            raise InjectedFault(f"injected get_many failure for {len(keys)} keys")
        return self.child.get_many(keys)

    def delete(self, key: str) -> None:
        self.child.delete(key)

    def keys(self) -> Iterator[str]:
        return self.child.keys()

    def __contains__(self, key: str) -> bool:
        return key in self.child

    def __len__(self) -> int:
        return len(self.child)

    def spec(self) -> str:
        return f"{self.scheme}+{self.child.spec()}"


class SkewedClock:
    """A deterministically-skewed clock for lease-expiry races.

    Real replica groups run on hosts whose clocks disagree by a constant
    offset, drift apart slowly, and jitter per reading.  All three are
    modelled, seeded, and injectable wherever a ``clock`` callable is
    accepted (e.g. :class:`~repro.storage.lease.PlannerLease`), so a
    "replica whose clock runs 5% fast steals a lease early" scenario is a
    unit test, not a flake.  ``advance`` additionally supports fully
    manual time for step-by-step state-machine tests; with
    ``manual=True`` the base clock is frozen at 0 and only ``advance``
    moves time.
    """

    def __init__(
        self,
        *,
        offset: float = 0.0,
        drift: float = 0.0,
        jitter: float = 0.0,
        seed: int = 0,
        base: Callable[[], float] | None = None,
        manual: bool = False,
    ) -> None:
        if jitter < 0:
            raise ValueError("jitter must be non-negative (seconds)")
        self.offset = float(offset)
        self.drift = float(drift)
        self.jitter = float(jitter)
        self._rng = random.Random(seed)
        self._manual = bool(manual)
        self._base = base if base is not None else time.time
        self._epoch = 0.0 if manual else self._base()
        self._advanced = 0.0
        self._lock = threading.Lock()

    def advance(self, seconds: float) -> None:
        """Move this clock forward by ``seconds`` (manual or hybrid mode)."""
        with self._lock:
            self._advanced += float(seconds)

    def __call__(self) -> float:
        with self._lock:
            base = 0.0 if self._manual else self._base()
            elapsed = base - self._epoch
            reading = base + self._advanced + self.offset + elapsed * self.drift
            if self.jitter:
                reading += self._rng.uniform(-self.jitter, self.jitter)
            return reading
