"""Fault-injection helpers for exercising storage failure paths.

Real storage fails: disks fill up, processes die mid-write, NFS flakes.
The recovery guarantees this package makes — an aborted repack staging
leaks nothing, a torn object is scrubbed rather than served, a crashed
append loses at most one workload-log line — are only guarantees if they
are *tested*, which needs failures that arrive deterministically at a
chosen operation.  :class:`FlakyBackend` provides exactly that: it wraps
any :class:`~repro.storage.backends.StorageBackend` and injects
configurable :class:`IOError`\\ s (optionally after a simulated partial
write) on the N-th put or get.

This module lives in the package rather than the test tree because fault
injection is useful beyond unit tests — soak scripts and the CI
fault-injection job drive the same wrapper — and because it must track
the backend interface it wraps.
"""

from __future__ import annotations

import threading
from typing import Any, Iterator, Sequence

from .backends import StorageBackend

__all__ = ["FlakyBackend", "TornValue", "InjectedFault"]


class InjectedFault(IOError):
    """The error :class:`FlakyBackend` raises when a fault triggers."""


class TornValue:
    """A stand-in for a partially-written object.

    When :class:`FlakyBackend` fails a put with ``partial_write=True`` it
    first stores one of these under the key — the moral equivalent of the
    truncated file a crash mid-write leaves behind.  Any code that ends up
    *serving* a :class:`TornValue` has a torn-write recovery bug.
    """

    def __init__(self, key: str) -> None:
        self.key = key

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TornValue key={self.key!r}>"


class FlakyBackend(StorageBackend):
    """Wraps a backend and injects deterministic failures.

    ``fail_puts_after=N`` lets the next ``N`` puts succeed and raises
    :class:`InjectedFault` on every put after them; ``fail_gets_after``
    does the same for gets (``get_many`` counts as one get).  With
    ``partial_write=True`` a failing put first stores a
    :class:`TornValue` under the key before raising — simulating a crash
    that left a truncated object behind.  :meth:`heal` disarms everything;
    ``puts``/``gets`` count *successful* operations (they pause while a
    fault is firing) and ``injected`` counts the failures, surviving
    arm/heal cycles so tests can assert exactly where a failure landed.
    All bookkeeping is thread-safe, so the wrapper can sit under a serving
    stack exercising concurrent requests.
    """

    scheme = "flaky"

    def __init__(
        self,
        child: StorageBackend,
        *,
        fail_puts_after: int | None = None,
        fail_gets_after: int | None = None,
        partial_write: bool = False,
    ) -> None:
        self.child = child
        self.fail_puts_after = fail_puts_after
        self.fail_gets_after = fail_gets_after
        self.partial_write = partial_write
        self.puts = 0
        self.gets = 0
        self.injected = 0
        self._lock = threading.Lock()

    # -- fault control --------------------------------------------------- #
    def heal(self) -> None:
        """Disarm every configured fault (counters keep their values)."""
        with self._lock:
            self.fail_puts_after = None
            self.fail_gets_after = None

    def _should_fail_put(self) -> bool:
        with self._lock:
            if self.fail_puts_after is not None and self.puts >= self.fail_puts_after:
                self.injected += 1
                return True
            self.puts += 1
            return False

    def _should_fail_get(self) -> bool:
        with self._lock:
            if self.fail_gets_after is not None and self.gets >= self.fail_gets_after:
                self.injected += 1
                return True
            self.gets += 1
            return False

    # -- StorageBackend --------------------------------------------------- #
    def put(self, key: str, value: Any) -> None:
        if self._should_fail_put():
            if self.partial_write:
                self.child.put(key, TornValue(key))
            raise InjectedFault(f"injected put failure for {key!r}")
        self.child.put(key, value)

    def get(self, key: str) -> Any:
        if self._should_fail_get():
            raise InjectedFault(f"injected get failure for {key!r}")
        return self.child.get(key)

    def get_many(self, keys: Sequence[str]) -> dict[str, Any]:
        if self._should_fail_get():
            raise InjectedFault(f"injected get_many failure for {len(keys)} keys")
        return self.child.get_many(keys)

    def delete(self, key: str) -> None:
        self.child.delete(key)

    def keys(self) -> Iterator[str]:
        return self.child.keys()

    def __contains__(self, key: str) -> bool:
        return key in self.child

    def __len__(self) -> int:
        return len(self.child)

    def spec(self) -> str:
        return f"{self.scheme}+{self.child.spec()}"
