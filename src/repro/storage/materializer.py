"""Materialization: reconstructing a version from its delta chain.

Checking out a version that is stored as a delta means walking its chain
down from the nearest fully materialized ancestor, applying one delta per
hop.  :class:`Materializer` performs that walk against an
:class:`~repro.storage.objects.ObjectStore`, optionally caching intermediate
payloads (useful when many checkouts share a prefix of the chain) and
keeping an account of the recreation cost it actually paid — the quantity
the paper's Φ matrix models.
"""

from __future__ import annotations

from typing import Any

from ..delta.base import DeltaEncoder
from ..exceptions import ObjectNotFoundError
from .objects import ObjectStore, StoredObject

__all__ = ["Materializer", "MaterializationResult"]


class MaterializationResult:
    """The payload of a checked-out version plus the cost of producing it."""

    __slots__ = ("payload", "recreation_cost", "chain_length", "cache_hits")

    def __init__(
        self, payload: Any, recreation_cost: float, chain_length: int, cache_hits: int
    ) -> None:
        self.payload = payload
        self.recreation_cost = recreation_cost
        self.chain_length = chain_length
        self.cache_hits = cache_hits


class Materializer:
    """Reconstructs payloads from full/delta object chains."""

    def __init__(
        self,
        store: ObjectStore,
        encoder: DeltaEncoder,
        *,
        cache_size: int = 0,
    ) -> None:
        self.store = store
        self.encoder = encoder
        self.cache_size = int(cache_size)
        self._cache: dict[str, Any] = {}

    def materialize(self, object_id: str) -> MaterializationResult:
        """Reconstruct the payload stored under ``object_id``.

        The recreation cost is the recreation cost of reading the base full
        object (its size) plus the recreation cost of every delta applied on
        the way — i.e. exactly the chain sum the storage plan predicted.
        """
        chain = self.store.delta_chain(object_id)
        cache_hits = 0

        # Start from the deepest cached prefix if caching is enabled.
        start_index = 0
        payload: Any = None
        if self.cache_size > 0:
            for index in range(len(chain) - 1, -1, -1):
                cached = self._cache.get(chain[index].object_id)
                if cached is not None:
                    payload = cached
                    start_index = index + 1
                    cache_hits += 1
                    break

        recreation_cost = 0.0
        for index in range(start_index, len(chain)):
            obj = chain[index]
            if not obj.is_delta:
                payload = obj.payload
                recreation_cost += obj.storage_cost()
            else:
                if payload is None:
                    raise ObjectNotFoundError(
                        f"delta object {obj.object_id!r} has no materialized base"
                    )
                payload = self.encoder.apply(payload, obj.payload)
                recreation_cost += obj.payload.recreation_cost
            self._remember(obj, payload)

        return MaterializationResult(
            payload=payload,
            recreation_cost=recreation_cost,
            chain_length=len(chain) - 1,
            cache_hits=cache_hits,
        )

    def _remember(self, obj: StoredObject, payload: Any) -> None:
        if self.cache_size <= 0:
            return
        self._cache[obj.object_id] = payload
        while len(self._cache) > self.cache_size:
            # Evict the oldest entry (dict preserves insertion order).
            oldest = next(iter(self._cache))
            del self._cache[oldest]

    def clear_cache(self) -> None:
        """Drop every cached payload."""
        self._cache.clear()
