"""Materialization: reconstructing a version from its delta chain.

Checking out a version that is stored as a delta means walking its chain
down from the nearest fully materialized ancestor, applying one delta per
hop.  :class:`Materializer` performs that walk against an
:class:`~repro.storage.objects.ObjectStore`, optionally caching intermediate
payloads (useful when many checkouts share a prefix of the chain) and
keeping an account of the recreation cost it actually paid — the quantity
the paper's Φ matrix models.

:class:`LRUPayloadCache` is the bounded cache both this module and the
batch engine (:mod:`repro.storage.batch`) key intermediate payloads on.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Any, Callable, Sequence

from ..delta.base import DeltaEncoder
from ..exceptions import ObjectNotFoundError
from ..obs.metrics import log_once
from .objects import ObjectStore, StoredObject

__all__ = [
    "Materializer",
    "MaterializationResult",
    "LRUPayloadCache",
    "replay_chain",
    "ADMISSION_POLICIES",
]

_MISS = object()

#: Admission policies understood by :class:`LRUPayloadCache`: ``"always"``
#: inserts unconditionally (classic LRU behavior), ``"cost"`` refuses a
#: payload whose marginal rebuild cost is lower than the cheapest victim
#: it would displace — cheap-to-rebuild payloads never push expensive ones
#: out of a full cache.
ADMISSION_POLICIES = ("always", "cost")


class LRUPayloadCache:
    """A bounded least-recently-used cache of object-id → payload.

    ``capacity <= 0`` disables the cache entirely (every lookup misses,
    every insert is dropped), which lets callers share one code path.

    **Victim ranking.**  With ``victim_cost`` unset, eviction is plain
    LRU (oldest entry out).  With it set, the cache ranks the
    ``eviction_sample`` least-recently-used entries by their *marginal
    recreation cost* — what a request would re-pay if exactly that entry
    were evicted — and drops the cheapest one: payloads sitting deep on
    otherwise-uncached chains are worth more than payloads one delta away
    from a cached base, even when touched less recently.  ``victim_cost``
    returning ``None`` marks an entry unpriceable (e.g. its chain left the
    store's index after a repack) — those evict first.  The callback is
    invoked while the cache lock is held; it may take other locks but must
    never call back into this cache except through ``__contains__``.

    **Admission.**  With ``admission="cost"`` (and ``victim_cost`` set),
    the same ranking is applied at the door: once the cache is full, a
    payload whose marginal rebuild cost is lower than the cheapest sampled
    victim's is not inserted at all (counted in ``admission_rejections``)
    — the entries it would displace are worth more than it is.

    Every operation is atomic behind an internal lock: the batch engine's
    union-tree workers and concurrently served checkouts all read and warm
    one shared cache, so ``move_to_end``/eviction must never interleave
    mid-flight.  Payload *values* are shared by reference and treated as
    immutable by every caller, exactly as before.
    """

    def __init__(
        self,
        capacity: int,
        *,
        victim_cost: Callable[[str], float | None] | None = None,
        eviction_sample: int = 8,
        admission: str = "always",
    ) -> None:
        if admission not in ADMISSION_POLICIES:
            known = ", ".join(ADMISSION_POLICIES)
            raise ValueError(f"unknown admission policy {admission!r} (known: {known})")
        self.capacity = int(capacity)
        self.victim_cost = victim_cost
        self.eviction_sample = max(1, int(eviction_sample))
        self.admission = admission
        self._entries: "OrderedDict[str, Any]" = OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.cost_evictions = 0
        self.lru_evictions = 0
        self.admission_rejections = 0

    def get(self, key: str) -> Any:
        """The cached payload for ``key``, or the module-level miss sentinel."""
        with self._lock:
            if self.capacity <= 0 or key not in self._entries:
                self.misses += 1
                return _MISS
            self._entries.move_to_end(key)
            self.hits += 1
            return self._entries[key]

    def put(self, key: str, payload: Any) -> None:
        if self._admission_reject(key):
            return
        with self._lock:
            if self.capacity <= 0:
                return
            self._entries[key] = payload
            self._entries.move_to_end(key)
            if len(self._entries) <= self.capacity:
                return
            if self.victim_cost is None:
                while len(self._entries) > self.capacity:
                    self._entries.popitem(last=False)
                    self.lru_evictions += 1
                return
        # Cost-ranked eviction prices candidates *outside* the lock: each
        # victim_cost call walks chain metadata, and serializing every
        # over-capacity put of all replay workers behind those walks would
        # undo the per-chain parallelism the cache serves.
        self._evict_by_cost()

    def _admission_reject(self, key: str) -> bool:
        """True when cost admission refuses to insert ``key``.

        Mirrors the eviction ranking at the door: with the cache full, a
        candidate whose marginal rebuild cost is *below* the cheapest
        sampled victim's would immediately become the next eviction choice
        — inserting it only churns the cold end.  Unpriceable candidates
        or victims admit (plain LRU behavior), and a cache below capacity
        admits everything, so admission never starves a warming cache.
        Pricing happens outside the lock for the same reason eviction
        pricing does.
        """
        if self.admission != "cost" or self.victim_cost is None:
            return False
        with self._lock:
            if (
                self.capacity <= 0
                or key in self._entries
                or len(self._entries) < self.capacity
            ):
                return False
            sample = min(self.eviction_sample, len(self._entries) - 1)
            candidates = []
            for existing in self._entries:  # insertion order = LRU order
                candidates.append(existing)
                if len(candidates) >= sample:
                    break
        if not candidates:
            return False
        try:
            candidate_cost = self.victim_cost(key)
        except Exception as exc:
            log_once(
                "cache:admission_cost",
                "admission scoring failed (%s: %s); admitting the entry",
                type(exc).__name__,
                exc,
            )
            return False
        if candidate_cost is None:
            return False
        cheapest: float | None = None
        for existing in candidates:
            try:
                cost = self.victim_cost(existing)
            except Exception:
                cost = None
            if cost is None:
                # An unpriceable victim (dead-epoch leftover) evicts for
                # free — displacing it is always worthwhile.
                return False
            if cheapest is None or cost < cheapest:
                cheapest = cost
        if cheapest is not None and float(candidate_cost) < cheapest:
            with self._lock:
                self.admission_rejections += 1
            return True
        return False

    def _evict_by_cost(self) -> None:
        # Rank the oldest entries only, and never the most recent one: a
        # just-replayed payload always looks cheap (its base is cached) but
        # evicting it would defeat the warm repeat the cache exists for —
        # recency stays the first filter, marginal cost breaks ties within
        # the cold end.  The lock is held only to snapshot candidates and
        # to delete the chosen victim (re-validated: it may have been
        # touched or evicted by a peer while we priced); after a few
        # contended rounds fall back to plain LRU rather than spin.
        for _attempt in range(4):
            with self._lock:
                if len(self._entries) <= self.capacity:
                    return
                sample = min(self.eviction_sample, len(self._entries) - 1)
                candidates: list[str] = []
                for key in self._entries:  # insertion order = LRU order
                    candidates.append(key)
                    if len(candidates) >= sample:
                        break
            victim = candidates[0]
            best: tuple[int, float, int] | None = None
            for index, key in enumerate(candidates):
                try:
                    cost = self.victim_cost(key)  # type: ignore[misc]
                except Exception as exc:
                    # Scoring must never break a put, but a broken scorer
                    # silently degrades the cache to LRU — say so once.
                    cost = None
                    log_once(
                        "cache:victim_cost",
                        "victim_cost scoring failed (%s: %s); treating the "
                        "entry as unpriceable",
                        type(exc).__name__,
                        exc,
                    )
                # Unpriceable entries (dead-epoch leftovers) rank below
                # every priced one; ties go to the least recently used.
                rank = (0, 0.0, index) if cost is None else (1, float(cost), index)
                if best is None or rank < best:
                    best = rank
                    victim = key
            with self._lock:
                if len(self._entries) <= self.capacity:
                    return
                mru = next(reversed(self._entries))
                if victim in self._entries and victim != mru:
                    if victim != next(iter(self._entries)):
                        self.cost_evictions += 1
                    else:
                        self.lru_evictions += 1
                    del self._entries[victim]
                    if len(self._entries) <= self.capacity:
                        return
        with self._lock:
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.lru_evictions += 1

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return self.capacity > 0 and key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    @staticmethod
    def is_miss(value: Any) -> bool:
        """True when ``value`` is the sentinel returned on a cache miss."""
        return value is _MISS


def replay_chain(
    chain_ids: Sequence[str],
    fetch: Callable[[str], StoredObject],
    cache: LRUPayloadCache,
    encoder: DeltaEncoder,
    observe: Callable[[str, float], None] | None = None,
) -> tuple[Any, float, int, int]:
    """Replay one root-first full-object/delta chain through a payload cache.

    Starts from the deepest cached ancestor and applies the remaining
    deltas, parking every intermediate payload in ``cache``.  Objects are
    pulled through ``fetch`` one at a time and only for the replayed
    suffix, so a caller's peak memory stays at one :class:`StoredObject`
    plus whatever the payload cache holds.  ``observe``, when given, is
    called with ``(object_id, seconds)`` for every hop actually replayed
    (fetch + apply wall time) — the feed for the store's measured Δ/Φ
    model.  Returns ``(payload, cost_paid, deltas_applied, cache_hits)``
    — the single source of truth for chain replay shared by
    :class:`Materializer` and the batch engine.
    """
    start_index = 0
    payload: Any = None
    cache_hits = 0
    for index in range(len(chain_ids) - 1, -1, -1):
        cached = cache.get(chain_ids[index])
        if not LRUPayloadCache.is_miss(cached):
            payload = cached
            start_index = index + 1
            cache_hits += 1
            break

    cost_paid = 0.0
    deltas_applied = 0
    for index in range(start_index, len(chain_ids)):
        started = time.perf_counter() if observe is not None else 0.0
        obj = fetch(chain_ids[index])
        if not obj.is_delta:
            payload = obj.payload
            cost_paid += obj.storage_cost()
        else:
            if payload is None:
                raise ObjectNotFoundError(
                    f"delta object {obj.object_id!r} has no materialized base"
                )
            payload = encoder.apply(payload, obj.payload)
            cost_paid += obj.payload.recreation_cost
            deltas_applied += 1
        if observe is not None:
            observe(obj.object_id, time.perf_counter() - started)
        cache.put(obj.object_id, payload)
    return payload, cost_paid, deltas_applied, cache_hits


class MaterializationResult:
    """The payload of a checked-out version plus the cost of producing it."""

    __slots__ = ("payload", "recreation_cost", "chain_length", "cache_hits")

    def __init__(
        self, payload: Any, recreation_cost: float, chain_length: int, cache_hits: int
    ) -> None:
        self.payload = payload
        self.recreation_cost = recreation_cost
        self.chain_length = chain_length
        self.cache_hits = cache_hits


class Materializer:
    """Reconstructs payloads from full/delta object chains."""

    def __init__(
        self,
        store: ObjectStore,
        encoder: DeltaEncoder,
        *,
        cache_size: int = 0,
    ) -> None:
        self.store = store
        self.encoder = encoder
        self.cache_size = int(cache_size)
        self._cache = LRUPayloadCache(self.cache_size)

    def materialize(self, object_id: str) -> MaterializationResult:
        """Reconstruct the payload stored under ``object_id``.

        The recreation cost is the recreation cost of reading the base full
        object (its size) plus the recreation cost of every delta applied on
        the way — i.e. exactly the chain sum the storage plan predicted.
        """
        chain = self.store.delta_chain(object_id)
        by_id = {obj.object_id: obj for obj in chain}
        payload, recreation_cost, _, cache_hits = replay_chain(
            [obj.object_id for obj in chain], by_id.__getitem__, self._cache, self.encoder
        )
        return MaterializationResult(
            payload=payload,
            recreation_cost=recreation_cost,
            chain_length=len(chain) - 1,
            cache_hits=cache_hits,
        )

    def clear_cache(self) -> None:
        """Drop every cached payload."""
        self._cache.clear()
