"""A two-tier warm payload cache: bounded memory LRU over a compressed disk tier.

The serving cache (:class:`~repro.storage.materializer.LRUPayloadCache`)
caps warm capacity at what fits in RAM.  :class:`TieredPayloadCache`
extends it with a byte-bounded *spill tier* on disk: every payload written
to the cache is also spilled as a zlib-compressed pickle under the
repository directory, a memory miss falls through to the disk tier, and a
disk hit is promoted back into the memory tier.  Both tiers rank eviction
victims by marginal rebuild cost (the warm cost model's metric), so the
cheap-to-rebuild long tail is what falls out of each tier first.

The spill format is deliberately disposable: one ``<object_id>.spill``
file per payload, written to a temp name and atomically renamed, read
back with every decode error treated as a plain miss (the entry is
dropped and the chain is recomputed from the store).  The directory is
scrubbed on open — a cache never survives a restart, so stale or torn
spill files from a previous process can never be served.
"""

from __future__ import annotations

import os
import pickle
import threading
import zlib
from collections import OrderedDict
from typing import Any, Callable

from ..obs.metrics import log_once
from .materializer import _MISS, LRUPayloadCache

__all__ = ["SpillTier", "TieredPayloadCache"]

_SPILL_SUFFIX = ".spill"

# Fast compression: the spill tier trades ratio for put-path latency
# (every materialized payload passes through here when the tier is on).
_COMPRESSION_LEVEL = 1


class SpillTier:
    """A byte-bounded, compressed, disk-backed payload cache tier.

    ``max_bytes`` bounds the *compressed* bytes on disk; ``<= 0`` disables
    the tier (every lookup misses, every insert is dropped).  Eviction
    mirrors :class:`LRUPayloadCache`: the ``eviction_sample`` oldest
    entries are ranked by ``victim_cost`` and the cheapest one is deleted
    (unpriceable entries first; plain LRU without a scorer).  All index
    state is guarded by one lock; file reads and writes happen outside it.
    """

    def __init__(
        self,
        directory: str,
        max_bytes: int,
        *,
        victim_cost: Callable[[str], float | None] | None = None,
        eviction_sample: int = 8,
    ) -> None:
        self.directory = str(directory)
        self.max_bytes = int(max_bytes)
        self.victim_cost = victim_cost
        self.eviction_sample = max(1, int(eviction_sample))
        self._index: "OrderedDict[str, int]" = OrderedDict()  # key -> compressed size
        self._lock = threading.Lock()
        self.bytes_used = 0
        self.hits = 0
        self.misses = 0
        self.spills = 0
        self.cost_evictions = 0
        self.lru_evictions = 0
        self.corruption_drops = 0
        if self.max_bytes > 0:
            os.makedirs(self.directory, exist_ok=True)
            self._scrub()

    def _scrub(self) -> None:
        """Delete leftover spill files from a previous process on open."""
        try:
            names = os.listdir(self.directory)
        except OSError:
            return
        for name in names:
            if name.endswith(_SPILL_SUFFIX) or (_SPILL_SUFFIX + ".tmp") in name:
                try:
                    os.unlink(os.path.join(self.directory, name))
                except OSError:
                    pass

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, key + _SPILL_SUFFIX)

    def get(self, key: str) -> Any:
        """The spilled payload for ``key``, or the shared miss sentinel.

        Any failure to read or decode the spill file — torn write, manual
        truncation, concurrent eviction — drops the entry and reports a
        miss, so corruption degrades to a recompute, never an error.
        """
        with self._lock:
            if self.max_bytes <= 0 or key not in self._index:
                self.misses += 1
                return _MISS
            self._index.move_to_end(key)
        try:
            with open(self._path(key), "rb") as handle:
                data = handle.read()
            payload = pickle.loads(zlib.decompress(data))
        except FileNotFoundError:
            # Evicted by a peer between the index probe and the read.
            with self._lock:
                self._drop(key)
                self.misses += 1
            return _MISS
        except Exception as exc:
            with self._lock:
                self._drop(key)
                self.corruption_drops += 1
                self.misses += 1
            log_once(
                "cache_tiers:corrupt:%s" % self.directory,
                "dropping corrupt spill file for %s in %s (%s: %s); "
                "the payload will be recomputed",
                key,
                self.directory,
                type(exc).__name__,
                exc,
            )
            try:
                os.unlink(self._path(key))
            except OSError:
                pass
            return _MISS
        with self._lock:
            self.hits += 1
        return payload

    def _drop(self, key: str) -> None:
        """Remove ``key`` from the index (lock held by caller)."""
        size = self._index.pop(key, None)
        if size is not None:
            self.bytes_used -= size

    def put(self, key: str, payload: Any) -> None:
        if self.max_bytes <= 0:
            return
        with self._lock:
            if key in self._index:
                # Content-addressed keys never change value: refresh
                # recency, skip the rewrite.
                self._index.move_to_end(key)
                return
        try:
            data = zlib.compress(
                pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL),
                _COMPRESSION_LEVEL,
            )
        except Exception as exc:
            log_once(
                "cache_tiers:pickle:%s" % self.directory,
                "payload for %s is not spillable (%s: %s); keeping it "
                "memory-only",
                key,
                type(exc).__name__,
                exc,
            )
            return
        if len(data) > self.max_bytes:
            return  # larger than the whole tier: not worth thrashing for
        path = self._path(key)
        tmp_path = "%s.tmp%d" % (path, threading.get_ident())
        try:
            with open(tmp_path, "wb") as handle:
                handle.write(data)
            os.replace(tmp_path, path)
        except OSError as exc:
            log_once(
                "cache_tiers:write:%s" % self.directory,
                "spill write failed in %s (%s: %s); the tier degrades to "
                "memory-only for this entry",
                self.directory,
                type(exc).__name__,
                exc,
            )
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            return
        with self._lock:
            if key in self._index:  # a peer spilled the same payload
                self._index.move_to_end(key)
                return
            self._index[key] = len(data)
            self.bytes_used += len(data)
            self.spills += 1
            over = self.bytes_used > self.max_bytes
        if over:
            self._evict()

    def _evict(self) -> None:
        """Shrink back under ``max_bytes``, cheapest sampled victim first.

        Pricing happens outside the lock (victim_cost walks chain
        metadata); like the memory tier, the most recent entry is never a
        candidate and a few contended rounds fall back to plain LRU.
        """
        for _attempt in range(8):
            with self._lock:
                if self.bytes_used <= self.max_bytes or len(self._index) <= 1:
                    break
                sample = min(self.eviction_sample, len(self._index) - 1)
                candidates: list[str] = []
                for key in self._index:  # insertion order = LRU order
                    candidates.append(key)
                    if len(candidates) >= sample:
                        break
            victim = candidates[0]
            if self.victim_cost is not None:
                best: tuple[int, float, int] | None = None
                for index, key in enumerate(candidates):
                    try:
                        cost = self.victim_cost(key)
                    except Exception:
                        cost = None
                    rank = (
                        (0, 0.0, index) if cost is None else (1, float(cost), index)
                    )
                    if best is None or rank < best:
                        best = rank
                        victim = key
            with self._lock:
                if self.bytes_used <= self.max_bytes:
                    return
                if victim in self._index and victim != next(reversed(self._index)):
                    self._drop(victim)
                    if self.victim_cost is not None and victim != candidates[0]:
                        self.cost_evictions += 1
                    else:
                        self.lru_evictions += 1
                else:
                    continue
            try:
                os.unlink(self._path(victim))
            except OSError:
                pass
        else:
            return
        # Loop exited via break with the budget satisfied (or a single
        # oversized entry left, which put() prevents).

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return self.max_bytes > 0 and key in self._index

    def __len__(self) -> int:
        with self._lock:
            return len(self._index)

    def clear(self) -> None:
        with self._lock:
            keys = list(self._index)
            self._index.clear()
            self.bytes_used = 0
        for key in keys:
            try:
                os.unlink(self._path(key))
            except OSError:
                pass


class TieredPayloadCache(LRUPayloadCache):
    """Memory LRU tier over a compressed disk spill tier.

    Drop-in for :class:`LRUPayloadCache` wherever the batch engine expects
    one: ``get`` falls through to the disk tier on a memory miss and
    promotes the hit back into memory (through the same admission policy
    as any other insert), ``put`` writes through to both tiers, and
    membership covers both — so the warm cost model prices a disk-resident
    ancestor as cached, which is exactly what a replay starting from it
    pays.  ``hits``/``misses`` count the memory tier only; the disk tier
    keeps its own counters on the ``disk`` attribute.
    """

    def __init__(
        self,
        capacity: int,
        *,
        spill_dir: str,
        spill_bytes: int,
        victim_cost: Callable[[str], float | None] | None = None,
        eviction_sample: int = 8,
        admission: str = "always",
    ) -> None:
        super().__init__(
            capacity,
            victim_cost=victim_cost,
            eviction_sample=eviction_sample,
            admission=admission,
        )
        self.disk = SpillTier(
            spill_dir,
            spill_bytes,
            victim_cost=victim_cost,
            eviction_sample=eviction_sample,
        )

    def get(self, key: str) -> Any:
        value = super().get(key)
        if not LRUPayloadCache.is_miss(value):
            return value
        spilled = self.disk.get(key)
        if LRUPayloadCache.is_miss(spilled):
            return _MISS
        super().put(key, spilled)  # promotion on hit
        return spilled

    def put(self, key: str, payload: Any) -> None:
        super().put(key, payload)
        self.disk.put(key, payload)

    def __contains__(self, key: str) -> bool:
        return super().__contains__(key) or key in self.disk

    def clear(self) -> None:
        super().clear()
        self.disk.clear()
