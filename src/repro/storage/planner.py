"""Applying a storage plan to a repository ("repacking").

The optimization algorithms decide *which* versions to materialize and which
deltas to keep; this module carries that decision out against the object
store: every version is re-encoded according to the plan (full object or a
delta against its plan parent), unreferenced objects are dropped, and a
before/after report is produced so experiments can compare the predicted
costs of a plan with the costs it realizes on actual payloads.

Re-encoding streams: versions are rewritten in parents-before-children
order while payloads are read from the *old* encoding through a bounded
:class:`~repro.storage.batch.BatchMaterializer` cache, so repacking never
holds every payload of the repository in memory at once — the property that
lets the re-packer run against repositories larger than RAM, exactly like
the archival repacking jobs surveyed in the paper's Section 6.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..core.instance import ROOT
from ..core.storage_plan import StoragePlan
from ..core.version import VersionID
from ..exceptions import InvalidStoragePlanError
from .batch import BatchMaterializer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .repository import Repository

__all__ = ["apply_plan", "plan_order"]


def plan_order(plan: StoragePlan) -> list[VersionID]:
    """Versions of ``plan`` ordered parents-before-children.

    Materialized versions come first, then every delta child after its
    parent, so the re-packer can always diff against an already re-encoded
    base.
    """
    children = plan.children_map()
    order: list[VersionID] = []
    stack = list(reversed(children.get(ROOT, [])))
    while stack:
        node = stack.pop()
        order.append(node)
        stack.extend(reversed(children.get(node, [])))
    if len(order) != len(plan):
        raise InvalidStoragePlanError(
            "storage plan is not a tree rooted at the dummy vertex"
        )
    return order


def apply_plan(
    repository: "Repository",
    plan: StoragePlan,
    *,
    payload_cache_size: int = 64,
) -> dict[str, float]:
    """Re-encode ``repository`` according to ``plan``.

    Returns a report with the storage cost before and after repacking, the
    number of materialized versions, and the number of delta objects.
    ``payload_cache_size`` bounds how many old-encoding payloads are kept
    in memory while streaming through the plan.
    """
    for vid in repository.graph.version_ids:
        if vid not in plan:
            raise InvalidStoragePlanError(
                f"plan does not cover repository version {vid!r}"
            )

    before = repository.total_storage_cost()

    old_object_of = {
        vid: repository.object_id_of(vid) for vid in repository.graph.version_ids
    }
    old_objects = set(old_object_of.values())

    # Payloads are content — independent of how they are encoded — so the
    # old encoding can be read lazily while new objects are written.  The
    # bounded cache makes consecutive reads along shared old chains cheap
    # without ever pinning the whole repository in memory.
    old_reader = BatchMaterializer(
        repository.store, repository.encoder, cache_size=payload_cache_size
    )

    new_objects: dict[VersionID, str] = {}
    num_deltas = 0
    for vid in plan_order(plan):
        payload = old_reader.materialize(old_object_of[vid]).payload
        parent = plan.parent(vid)
        if parent is ROOT:
            new_objects[vid] = repository.store.put_full(payload)
            continue
        parent_payload = old_reader.materialize(old_object_of[parent]).payload
        delta = repository.encoder.diff(parent_payload, payload)
        new_objects[vid] = repository.store.put_delta(new_objects[parent], delta)
        num_deltas += 1

    for vid, object_id in new_objects.items():
        repository._set_object(vid, object_id)

    # Drop objects that are no longer referenced by any version.
    referenced: set[str] = set()
    for vid in repository.graph.version_ids:
        for obj in repository.store.delta_chain(repository.object_id_of(vid)):
            referenced.add(obj.object_id)
    for object_id in old_objects:
        if object_id not in referenced:
            repository.store.remove(object_id)

    repository.materializer.clear_cache()
    repository.batch_materializer.clear_cache()
    after = repository.total_storage_cost()
    return {
        "storage_before": before,
        "storage_after": after,
        "num_versions": float(len(plan)),
        "num_materialized": float(len(plan.materialized_versions())),
        "num_deltas": float(num_deltas),
    }
