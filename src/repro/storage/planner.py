"""Applying a storage plan to a repository ("repacking").

The actual machinery lives in :mod:`repro.storage.repack`, which splits the
work into a concurrent-reader-safe rebuild phase and an exclusive swap so a
*live* repository can be repacked online.  This module keeps the historical
offline entry points: :func:`apply_plan` re-encodes a repository in one
call and :func:`plan_order` exposes the parents-before-children ordering
the re-packer streams through.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .repack import OnlineRepacker, plan_order

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.storage_plan import StoragePlan
    from .repository import Repository

__all__ = ["apply_plan", "plan_order"]


def apply_plan(
    repository: "Repository",
    plan: "StoragePlan",
    *,
    payload_cache_size: int = 64,
) -> dict[str, float]:
    """Re-encode ``repository`` according to ``plan`` (offline, blocking).

    Returns a report with the storage cost before and after repacking, the
    number of materialized versions, and the number of delta objects.
    ``payload_cache_size`` bounds how many old-encoding payloads are kept
    in memory while streaming through the plan.
    """
    return OnlineRepacker(
        repository, payload_cache_size=payload_cache_size
    ).repack(plan)
