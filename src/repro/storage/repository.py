"""A miniature DataHub-style version-controlled repository.

The paper's prototype exposes "a subset of Git/SVN-like interface for
dataset versioning": users commit new versions of a dataset, check out any
version, create branches and record merges (merges are performed by the user
and registered with more than one parent).  :class:`Repository` provides the
same surface on top of the object store, delta encoders and storage plans of
this package:

* ``commit(payload, parents=...)`` registers a new version.  By default the
  payload is stored as a delta against its first parent (if that delta is
  smaller than the full payload);
* ``checkout(version_id)`` reconstructs any version and reports the
  recreation cost actually paid;
* ``branch``/``merge`` manipulate named branch heads;
* ``repack(plan)`` re-encodes the whole repository according to a
  :class:`~repro.core.storage_plan.StoragePlan` produced by any of the
  optimization algorithms — this is the bridge between the optimization
  layer and the bytes on disk.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from ..core.instance import ProblemInstance
from ..core.matrices import CostModel
from ..core.storage_plan import StoragePlan
from ..core.version import Version, VersionID
from ..core.version_graph import VersionGraph
from ..delta.base import DeltaEncoder, payload_size
from ..delta.line_diff import LineDiffEncoder
from ..exceptions import (
    MergeError,
    RepositoryError,
    StaleEpochError,
    VersionNotFoundError,
)
from .backends import StorageBackend
from .batch import BatchMaterializer, BatchResult
from .materializer import MaterializationResult, Materializer
from .objects import ObjectStore

__all__ = ["Repository", "CheckoutStats"]


def _find_catalog(backend: StorageBackend) -> Any:
    """The metadata catalog behind ``backend``, if its chain carries one.

    A ``sqlite://`` backend exposes ``.catalog``; test wrappers (e.g. the
    fault-injecting :class:`~repro.storage.testing.FlakyBackend`) expose
    the wrapped backend as ``.child`` — follow a few links so wrapping a
    cataloged backend keeps it cataloged.
    """
    current: Any = backend
    for _ in range(8):
        if current is None:
            return None
        catalog = getattr(current, "catalog", None)
        if catalog is not None:
            return catalog
        current = getattr(current, "child", None)
    return None


@dataclass
class CheckoutStats:
    """Aggregate statistics over the checkouts served by a repository."""

    num_checkouts: int = 0
    total_recreation_cost: float = 0.0
    max_recreation_cost: float = 0.0
    total_chain_length: int = 0
    per_version: dict[VersionID, int] = field(default_factory=dict)

    def record(self, version_id: VersionID, result: MaterializationResult) -> None:
        """Fold one checkout into the running totals."""
        self.num_checkouts += 1
        self.total_recreation_cost += result.recreation_cost
        self.max_recreation_cost = max(self.max_recreation_cost, result.recreation_cost)
        self.total_chain_length += result.chain_length
        self.per_version[version_id] = self.per_version.get(version_id, 0) + 1

    @property
    def average_recreation_cost(self) -> float:
        """Mean recreation cost over all recorded checkouts."""
        if self.num_checkouts == 0:
            return 0.0
        return self.total_recreation_cost / self.num_checkouts


class Repository:
    """Commit/checkout/branch/merge on top of delta-compressed storage.

    Single checkouts and batch checkouts deliberately keep separate payload
    caches: :meth:`checkout` reports the canonical chain cost the paper's Φ
    matrix models (``cache_size`` controls its own small cache), while
    :meth:`checkout_many` reports amortized serving cost through the batch
    engine's larger cache (``batch_cache_size``).  Sharing one cache would
    make single-checkout cost accounting depend on whatever batch happened
    to run before it.
    """

    DEFAULT_BRANCH = "main"

    def __init__(
        self,
        encoder: DeltaEncoder | None = None,
        *,
        directory: str | None = None,
        backend: str | StorageBackend | None = None,
        cache_size: int = 4,
        batch_cache_size: int = 64,
        batch_strategy: str = "dfs",
        delta_against_parent: bool = True,
    ) -> None:
        self.encoder = encoder if encoder is not None else LineDiffEncoder()
        self.store = ObjectStore(directory=directory, backend=backend)
        self.materializer = Materializer(self.store, self.encoder, cache_size=cache_size)
        self.batch_materializer = BatchMaterializer(
            self.store, self.encoder, cache_size=batch_cache_size, strategy=batch_strategy
        )
        self.graph = VersionGraph()
        self.delta_against_parent = bool(delta_against_parent)
        self._object_of: dict[VersionID, str] = {}
        self._branches: dict[str, VersionID | None] = {self.DEFAULT_BRANCH: None}
        self._current_branch = self.DEFAULT_BRANCH
        self._counter = 0
        self.checkout_stats = CheckoutStats()
        # Active repack epoch.  Plain repositories count it in memory (the
        # CLI persists it in the JSON state file); a catalog-backed
        # repository reads it from the database, where it is monotonic
        # across restarts and shared between processes.
        self.epoch = 0
        # A sqlite:// backend carries a transactional metadata catalog.
        # When present, the catalog is the source of truth for the version
        # graph, branch heads, id allocation and the epoch pointer; this
        # object is a cache kept current by :meth:`sync`.
        self._catalog = _find_catalog(self.store.backend)
        self._change_seq = -1
        self._sync_lock = threading.Lock()
        if self._catalog is not None:
            self.sync(force=True)

    # ------------------------------------------------------------------ #
    # the metadata catalog
    # ------------------------------------------------------------------ #
    @property
    def catalog(self) -> Any:
        """The transactional metadata catalog, or ``None`` when file-backed."""
        return self._catalog

    def sync(self, *, force: bool = False) -> bool:
        """Adopt catalog state written since the last sync (peer processes).

        Cheap when nothing changed: one read of the catalog's change
        counter.  On a change, unseen versions are added to the graph, the
        version→object mapping and branch heads are replaced wholesale,
        and — when the active epoch moved (a peer repacked) — the payload
        caches are dropped, since they describe the dead encoding.
        Returns ``True`` when state was adopted.
        """
        if self._catalog is None:
            return False
        with self._sync_lock:
            seq = self._catalog.change_seq()
            if not force and seq == self._change_seq:
                return False
            state = self._catalog.state()
            epoch_changed = int(state["epoch"]) != self.epoch
            for row in state["versions"]:
                if row["id"] in self.graph:
                    continue
                self.graph.add_version(
                    Version(
                        version_id=row["id"],
                        size=row["size"],
                        name=row["name"],
                        parents=tuple(row["parents"]),
                        created_at=row["created_at"],
                        metadata=dict(row["metadata"]),
                    )
                )
            self._object_of = dict(state["objects"])
            branches = dict(state["branches"])
            if not branches:
                branches = {self.DEFAULT_BRANCH: None}
            self._branches = branches
            if self._change_seq < 0 or self._current_branch not in branches:
                # First load adopts the catalog's current branch (a fresh
                # process resumes where the last `switch` left off); after
                # that the current branch is session-local, and only a
                # peer *deleting* it forces a fallback.
                fallback = state["current_branch"]
                self._current_branch = (
                    fallback if fallback in branches else next(iter(branches))
                )
            self._counter = max(self._counter, int(state["counter"]))
            self.epoch = int(state["epoch"])
            self._change_seq = int(state["change_seq"])
            if epoch_changed:
                self.materializer.clear_cache()
                self.batch_materializer.clear_cache()
            return True

    # ------------------------------------------------------------------ #
    # branching
    # ------------------------------------------------------------------ #
    @property
    def current_branch(self) -> str:
        """Name of the branch new commits go to."""
        return self._current_branch

    @property
    def branches(self) -> dict[str, VersionID | None]:
        """Mapping of branch name to its head version (None for empty)."""
        return dict(self._branches)

    def branch(self, name: str, at: VersionID | None = None) -> None:
        """Create branch ``name`` pointing at ``at`` (default: current head)."""
        if name in self._branches:
            raise RepositoryError(f"branch {name!r} already exists")
        head = at if at is not None else self._branches[self._current_branch]
        if head is not None and head not in self.graph:
            raise VersionNotFoundError(head)
        self._branches[name] = head
        if self._catalog is not None:
            self._catalog.save_branch(name, head)

    def switch(self, name: str) -> None:
        """Make ``name`` the current branch."""
        if name not in self._branches:
            raise RepositoryError(f"branch {name!r} does not exist")
        self._current_branch = name
        if self._catalog is not None:
            self._catalog.save_current_branch(name)

    def head(self, branch: str | None = None) -> VersionID | None:
        """Head version of ``branch`` (default: the current branch)."""
        name = branch or self._current_branch
        if name not in self._branches:
            raise RepositoryError(f"branch {name!r} does not exist")
        return self._branches[name]

    # ------------------------------------------------------------------ #
    # committing
    # ------------------------------------------------------------------ #
    def commit(
        self,
        payload: Any,
        *,
        parents: Iterable[VersionID] | None = None,
        message: str = "",
        version_id: VersionID | None = None,
    ) -> VersionID:
        """Register a new version of the dataset.

        When ``parents`` is omitted the current branch head is used (a root
        commit when the branch is empty).  The payload is stored as a delta
        against the first parent whenever that delta is smaller than the
        payload itself; otherwise it is stored in full.
        """
        parent_ids = tuple(parents) if parents is not None else ()
        if not parent_ids:
            head = self._branches[self._current_branch]
            parent_ids = (head,) if head is not None else ()
        for parent in parent_ids:
            if parent not in self.graph:
                # A peer process may have committed the parent since the
                # last sync; adopt the catalog state before giving up.
                if (
                    self._catalog is None
                    or not self.sync()
                    or parent not in self.graph
                ):
                    raise VersionNotFoundError(parent)

        if self._catalog is not None:
            return self._commit_catalog(payload, parent_ids, message, version_id)

        vid = version_id if version_id is not None else self._next_id()
        size = payload_size(payload)
        version = Version(
            version_id=vid,
            size=size,
            name=message or str(vid),
            parents=parent_ids,
            created_at=self._counter,
            metadata={"message": message},
        )
        self.graph.add_version(version)

        stored_as_delta = False
        if self.delta_against_parent and parent_ids:
            base_vid = parent_ids[0]
            base_payload = self.checkout(base_vid, record_stats=False).payload
            delta = self.encoder.diff(base_payload, payload)
            if delta.storage_cost < size:
                base_object = self._object_of[base_vid]
                self._object_of[vid] = self.store.put_delta(base_object, delta)
                stored_as_delta = True
        if not stored_as_delta:
            self._object_of[vid] = self.store.put_full(payload)

        self._branches[self._current_branch] = vid
        return vid

    def _commit_catalog(
        self,
        payload: Any,
        parent_ids: tuple[VersionID, ...],
        message: str,
        version_id: VersionID | None,
    ) -> VersionID:
        """Commit through the catalog's transaction, retrying stale deltas.

        The payload is encoded first (outside any transaction — encoding
        may be slow), then registered with
        :meth:`~repro.storage.catalog.MetadataCatalog.record_commit`, which
        validates the delta base against the *current* active mapping.  A
        :class:`~repro.exceptions.StaleEpochError` means a peer repacked
        between encoding and the transaction: re-sync and re-encode against
        the new mapping; as a last resort store the payload in full (a full
        object has no base to go stale).  Objects orphaned by a lost race
        are content-addressed leftovers swept by the next epoch prune.
        """
        size = payload_size(payload)
        for attempt in range(3):
            delta_base: VersionID | None = None
            base_object: str | None = None
            object_id: str | None = None
            if self.delta_against_parent and parent_ids and attempt < 2:
                base_vid = parent_ids[0]
                base_payload = self.checkout(base_vid, record_stats=False).payload
                delta = self.encoder.diff(base_payload, payload)
                if delta.storage_cost < size:
                    base_object = self._object_of[base_vid]
                    object_id = self.store.put_delta(base_object, delta)
                    delta_base = base_vid
            if object_id is None:
                object_id = self.store.put_full(payload)
                base_object = None
            try:
                vid, created_at = self._catalog.record_commit(
                    version_id=version_id,
                    size=size,
                    name=message,
                    parents=parent_ids,
                    metadata={"message": message},
                    object_id=object_id,
                    branch=self._current_branch,
                    base_version=delta_base,
                    base_object_id=base_object,
                )
                break
            except StaleEpochError:
                if attempt == 2:  # pragma: no cover - full commits never stale
                    raise
                self.sync(force=True)
        if vid not in self.graph:
            self.graph.add_version(
                Version(
                    version_id=vid,
                    size=size,
                    name=message or str(vid),
                    parents=parent_ids,
                    created_at=created_at,
                    metadata={"message": message},
                )
            )
        self._object_of[vid] = object_id
        self._branches[self._current_branch] = vid
        if version_id is None:
            self._counter = max(self._counter, created_at + 1)
        return vid

    def merge(
        self,
        other_head: VersionID,
        merged_payload: Any,
        *,
        message: str = "merge",
    ) -> VersionID:
        """Record a merge of the current branch head with ``other_head``.

        As in the paper's prototype, the *user* performs the merge and hands
        the system the merged payload; the system records a version with two
        parents.
        """
        current_head = self._branches[self._current_branch]
        if current_head is None:
            raise MergeError("cannot merge into an empty branch")
        if other_head not in self.graph:
            raise VersionNotFoundError(other_head)
        if other_head == current_head:
            raise MergeError("cannot merge a branch head with itself")
        return self.commit(
            merged_payload, parents=(current_head, other_head), message=message
        )

    # ------------------------------------------------------------------ #
    # reading
    # ------------------------------------------------------------------ #
    def checkout(self, version_id: VersionID, record_stats: bool = True) -> MaterializationResult:
        """Reconstruct the payload of ``version_id``."""
        if version_id not in self._object_of:
            # The version may have been committed by a peer process since
            # the last sync; adopt the catalog state before giving up.
            self.sync()
            if version_id not in self._object_of:
                raise VersionNotFoundError(version_id)
        result = self.materializer.materialize(self._object_of[version_id])
        if record_stats:
            self.checkout_stats.record(version_id, result)
        return result

    def checkout_many(
        self, version_ids: Iterable[VersionID], record_stats: bool = True
    ) -> BatchResult:
        """Reconstruct many versions at once, amortizing shared chain prefixes.

        Returns a :class:`~repro.storage.batch.BatchResult` keyed by version
        id: per-version payloads, the recreation cost actually paid, and the
        Φ chain cost the storage plan predicts for each.  Duplicate ids are
        served from a single materialization.
        """
        requests: list[tuple[VersionID, str]] = []
        for vid in version_ids:
            if vid not in self._object_of:
                self.sync()  # a peer process may have committed it
                if vid not in self._object_of:
                    raise VersionNotFoundError(vid)
            requests.append((vid, self._object_of[vid]))
        result = self.batch_materializer.materialize_many(requests)
        if record_stats:
            # Every request counts as a checkout, but cost is folded in as
            # actually paid: the first request for an item carries its
            # charged cost, repeats are cache-served (zero cost) — matching
            # how content-deduplicated aliases are accounted inside the
            # batch itself.
            recorded: set[VersionID] = set()
            for vid, _ in requests:
                item = result.items[vid]
                if vid in recorded:
                    item = MaterializationResult(
                        payload=item.payload,
                        recreation_cost=0.0,
                        chain_length=item.chain_length,
                        cache_hits=1,
                    )
                else:
                    recorded.add(vid)
                self.checkout_stats.record(vid, item)
        return result

    def log(self, version_id: VersionID | None = None) -> list[Version]:
        """History of ``version_id`` (default: current head), newest first."""
        head = version_id if version_id is not None else self._branches[self._current_branch]
        if head is None:
            return []
        ancestors = self.graph.ancestors(head) | {head}
        versions = [self.graph.version(vid) for vid in ancestors]
        return sorted(versions, key=lambda v: v.created_at, reverse=True)

    def __len__(self) -> int:
        return len(self.graph)

    def total_storage_cost(self) -> float:
        """Storage cost of every object currently in the store."""
        return self.store.total_storage_cost()

    def chain_stats(self, version_id: VersionID):
        """Chain pricing of ``version_id`` from the store's cost index.

        Returns the store's :class:`~repro.storage.objects.ChainStats` —
        Φ chain total, delta count, chain length and root object — without
        replaying any payload.  The index is maintained incrementally at
        commit time (:meth:`commit` writes the entry as a side effect of
        storing the object) and across repacks (staged objects are indexed
        when written, dead ones evicted when collected), so this is cheap
        enough for per-request policy decisions.
        """
        return self.store.chain_stats(self.object_id_of(version_id))

    # ------------------------------------------------------------------ #
    # bridging to the optimization layer
    # ------------------------------------------------------------------ #
    def build_cost_model(
        self,
        *,
        pairs: Iterable[tuple[VersionID, VersionID]] | None = None,
        hop_limit: int | None = 2,
    ) -> CostModel:
        """Measure a Δ/Φ cost model from the repository's actual payloads.

        Deltas are computed with the repository's encoder between the pairs
        given (default: all ordered pairs within ``hop_limit`` undirected
        hops in the version graph).

        Symmetric encoders (``cell``, ``two-way-line``) produce one delta
        usable in both directions, yet their measured costs can still depend
        on which endpoint was diffed against which — while the undirected
        cost model collapses both directions into a single entry.  To keep
        the model independent of pair iteration order, each unordered pair
        is canonicalized to the *max* of both directions (the conservative
        bound: a plan priced with it never under-states storage or
        recreation whichever way the delta is replayed).
        """
        model = CostModel(directed=not self.encoder.symmetric, phi_equals_delta=False)
        # One consistent snapshot of the version set: a peer commit (or a
        # concurrent sync adopting one) can grow the graph while the model
        # is being measured, and pair selection must not name a version the
        # payload pass never saw.  Versions landing mid-measurement are
        # simply absent from this model — the activation transaction
        # carries them forward unchanged.
        version_ids = list(self.graph.version_ids)
        payloads: dict[VersionID, Any] = {}
        for vid in version_ids:
            payloads[vid] = self.checkout(vid, record_stats=False).payload
            size = payload_size(payloads[vid])
            model.set_materialization(vid, size, size)
        if pairs is None:
            selected: list[tuple[VersionID, VersionID]] = []
            for source in version_ids:
                distances = self.graph.undirected_hop_distance(source, max_hops=hop_limit)
                selected.extend(
                    (source, target)
                    for target in distances
                    if target != source and target in payloads
                )
        else:
            selected = [
                (source, target)
                for source, target in pairs
                if source in payloads and target in payloads
            ]
        if model.directed:
            for source, target in selected:
                delta = self.encoder.diff(payloads[source], payloads[target])
                model.set_delta(source, target, delta.storage_cost, delta.recreation_cost)
        else:
            measured: set[frozenset] = set()
            for source, target in selected:
                pair_key = frozenset((source, target))
                if pair_key in measured:
                    continue
                measured.add(pair_key)
                forward = self.encoder.diff(payloads[source], payloads[target])
                backward = self.encoder.diff(payloads[target], payloads[source])
                model.set_delta(
                    source,
                    target,
                    max(forward.storage_cost, backward.storage_cost),
                    max(forward.recreation_cost, backward.recreation_cost),
                )
        return model

    def problem_instance(
        self,
        *,
        access_frequencies: Mapping[VersionID, float] | None = None,
        hop_limit: int | None = 2,
    ) -> ProblemInstance:
        """The repository as a :class:`~repro.core.instance.ProblemInstance`."""
        model = self.build_cost_model(hop_limit=hop_limit)
        return ProblemInstance.from_version_graph(self.graph, model, access_frequencies)

    def repack(self, plan: StoragePlan) -> dict[str, float]:
        """Re-encode every version according to ``plan``.

        Versions the plan materializes are stored in full; versions stored
        as deltas are re-diffed against their plan parent.  Returns a small
        report with the storage cost before and after.  Objects no longer
        referenced are removed from the store.  Online (concurrent-reader)
        repacking is the job of :class:`~repro.storage.repack.OnlineRepacker`,
        which this method delegates to in its offline one-shot form.
        """
        from .repack import OnlineRepacker  # local import to avoid a cycle

        return OnlineRepacker(self).repack(plan)

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _next_id(self) -> str:
        vid = f"v{self._counter}"
        self._counter += 1
        return vid

    def object_id_of(self, version_id: VersionID) -> str:
        """Object id currently backing ``version_id`` (used by the planner)."""
        try:
            return self._object_of[version_id]
        except KeyError:
            self.sync()  # a peer process may have committed it
            try:
                return self._object_of[version_id]
            except KeyError:
                raise VersionNotFoundError(version_id) from None

    def _set_object(self, version_id: VersionID, object_id: str) -> None:
        """Repoint ``version_id`` at a different object (used by the planner)."""
        if version_id not in self.graph:
            raise VersionNotFoundError(version_id)
        self._object_of[version_id] = object_id
