"""Process-pool replay tasks: the GIL-free half of the batch engine.

``BatchMaterializer`` with ``worker_model="process"`` ships each subtree
stripe of a union-tree replay to a ``ProcessPoolExecutor`` instead of a
thread pool.  A task must therefore be (a) importable by a freshly
spawned interpreter and (b) built entirely from picklable values — so
what crosses the boundary is a *description* of the replay, not live
objects: the backend spec string, the encoder name (resolved through
:mod:`repro.delta.registry`), and the root-first chain ids per requested
tip.  The worker reopens the backend, replays, and sends materialized
payloads back.

Worker processes are reused across tasks, so each keeps a small
module-level state cache keyed by ``(backend spec, encoder name, cache
size)``: the reopened :class:`~repro.storage.objects.ObjectStore`, the
rebuilt encoder, and a worker-local
:class:`~repro.storage.materializer.LRUPayloadCache`.  Repeated tasks
against the same store amortize both the reopen and shared chain
prefixes.  The parent's shared cache stays authoritative: the parent
re-caches returned tip payloads, and epoch swaps clear parent caches as
before — a worker-local cache can only ever hold content-addressed
payloads, which are immutable, so a stale entry is impossible by
construction.

Not every backend can cross a process boundary.  :func:`process_safe_spec`
says whether a spec reopens to *the same data* in another process:
``file://``/``zip://``/``sqlite://``/``http(s)://`` do (shared disk or
network), ``shard://N/CHILD`` does when its child does, while
``memory://``, inline ``shard://[...]`` children and wrapped test
backends (``latency+memory://``) do not — the materializer silently
falls back to the thread model for those.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Tuple

from ..delta.registry import encoder_from_name, registered_encoder_names
from .materializer import LRUPayloadCache, replay_chain
from .objects import ObjectStore

__all__ = [
    "ReplayOutcome",
    "ReplayTaskResult",
    "replay_task",
    "process_safe_spec",
    "replayable_encoder",
]

#: Schemes whose spec string reopens to the same data in another process.
_SAFE_SCHEMES = frozenset({"file", "zip", "sqlite", "http", "https"})


def process_safe_spec(spec: str) -> bool:
    """True when ``spec`` reopens to the same data from a worker process."""
    scheme, sep, rest = spec.partition("://")
    if not sep or not scheme:
        return False
    if scheme in _SAFE_SCHEMES:
        return True
    if scheme == "shard":
        if rest.startswith("["):
            return False  # inline children: no reopenable path survives
        count_text, slash, child_spec = rest.partition("/")
        return bool(slash) and count_text.isdigit() and process_safe_spec(child_spec)
    return False


def replayable_encoder(encoder: Any) -> bool:
    """True when ``encoder`` can be rebuilt by name in a worker process."""
    name = getattr(encoder, "name", None)
    return isinstance(name, str) and name in registered_encoder_names()


@dataclass(frozen=True)
class ReplayOutcome:
    """One tip's replay result, shipped back from the worker."""

    object_id: str
    payload: Any
    cost_paid: float
    deltas_applied: int
    cache_hits: int


@dataclass(frozen=True)
class ReplayTaskResult:
    """Everything one stripe task produced, plus worker provenance.

    ``pid``/``started``/``finished`` use ``os.getpid()`` and ``time.time()``
    (wall clock — ``perf_counter`` is not comparable across processes) so
    tests and the pool stats can assert that two stripes actually ran in
    distinct workers with overlapping spans.  ``observations`` carries the
    per-hop ``(object_id, seconds)`` measurements normally fed straight
    into ``ObjectStore.observe_apply`` — the parent folds them into its
    own measured-cost index on receipt.
    """

    outcomes: Tuple[ReplayOutcome, ...]
    pid: int
    started: float
    finished: float
    observations: Tuple[Tuple[str, float], ...] = field(default_factory=tuple)


#: Per-worker-process state: (backend spec, encoder name, cache size) ->
#: (store, encoder, worker-local payload cache).  Module-level so it
#: survives across tasks within one pool worker and is rebuilt from
#: scratch in every new worker (spawn start method).
_WORKER_STATE: Dict[Tuple[str, str, int], Tuple[ObjectStore, Any, LRUPayloadCache]] = {}


def _worker_state(
    backend_spec: str, encoder_name: str, cache_size: int
) -> Tuple[ObjectStore, Any, LRUPayloadCache]:
    key = (backend_spec, encoder_name, cache_size)
    state = _WORKER_STATE.get(key)
    if state is None:
        store = ObjectStore(backend=backend_spec)
        encoder = encoder_from_name(encoder_name)
        cache = LRUPayloadCache(cache_size)
        state = (store, encoder, cache)
        _WORKER_STATE[key] = state
    return state


def replay_task(
    backend_spec: str,
    encoder_name: str,
    chains: Mapping[str, Tuple[str, ...]],
    cache_size: int = 64,
) -> ReplayTaskResult:
    """Replay the chains of one subtree stripe inside a worker process.

    ``chains`` maps each requested tip to its root-first chain ids (the
    parent resolves chains before dispatch so workers never race on
    metadata).  Tips are replayed in sorted order through the worker's
    local payload cache, so chains sharing a prefix — the common case
    within one subtree stripe — pay for it once.  Also runs fine in the
    parent process (the thread model's tests reuse it directly).
    """
    started = time.time()
    store, encoder, cache = _worker_state(backend_spec, encoder_name, cache_size)
    observations: list[Tuple[str, float]] = []
    outcomes: list[ReplayOutcome] = []
    for object_id in sorted(chains):
        payload, cost_paid, deltas_applied, cache_hits = replay_chain(
            chains[object_id],
            store.get,
            cache,
            encoder,
            observe=lambda oid, seconds: observations.append((oid, seconds)),
        )
        outcomes.append(
            ReplayOutcome(
                object_id=object_id,
                payload=payload,
                cost_paid=cost_paid,
                deltas_applied=deltas_applied,
                cache_hits=cache_hits,
            )
        )
    return ReplayTaskResult(
        outcomes=tuple(outcomes),
        pid=os.getpid(),
        started=started,
        finished=time.time(),
        observations=tuple(observations),
    )
