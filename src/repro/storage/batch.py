"""Batch checkout: materializing many versions while paying shared work once.

The paper's recreation cost model (the Φ matrix) charges every checkout the
full cost of its delta chain.  A serving system that receives *batches* of
checkouts — a dashboard rebuilding every branch head, a CI farm checking out
fifty snapshots of the same lineage — can do much better: chains that share
a prefix only need that prefix replayed once.

:class:`BatchMaterializer` implements that amortization.  Requests are
ordered so that chains sharing a prefix are processed back to back (sorting
by the chain's object-id tuple puts every prefix immediately before its
extensions), and every intermediate payload is parked in a bounded
:class:`~repro.storage.materializer.LRUPayloadCache`.  Each request then
only pays for the suffix below its deepest cached ancestor.

The result reports, per version and in aggregate, the recreation cost
*actually paid* next to the chain cost the storage plan *predicts* (the Φ
chain sum), so experiments can measure how far real serving sits below the
model the optimizers plan against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable, Sequence

from ..delta.base import DeltaEncoder
from ..exceptions import ObjectNotFoundError
from .materializer import LRUPayloadCache, replay_chain
from .objects import ObjectStore

__all__ = ["BatchMaterializer", "BatchItem", "BatchResult"]


@dataclass(frozen=True)
class _ChainLink:
    """Per-object chain metadata retained across a batch (never the object)."""

    base_id: str | None
    phi_contribution: float


@dataclass
class BatchItem:
    """One materialized request of a batch.

    ``predicted_cost`` is the full Φ chain sum the storage plan models for
    this version; ``recreation_cost`` is what this request actually paid
    after cache reuse (the two coincide on a cold cache).
    """

    key: Hashable
    object_id: str
    payload: Any
    chain_length: int
    predicted_cost: float
    recreation_cost: float
    deltas_applied: int
    cache_hits: int

    @property
    def amortized(self) -> bool:
        """True when cache reuse made this request cheaper than predicted."""
        return self.recreation_cost < self.predicted_cost


@dataclass
class BatchResult:
    """Per-request items plus the aggregate accounting of a batch."""

    items: dict[Hashable, BatchItem] = field(default_factory=dict)

    @property
    def total_predicted_cost(self) -> float:
        """Σ Φ chain costs — what serving each request alone would pay."""
        return float(sum(item.predicted_cost for item in self.items.values()))

    @property
    def total_recreation_cost(self) -> float:
        """Recreation cost the batch actually paid."""
        return float(sum(item.recreation_cost for item in self.items.values()))

    @property
    def deltas_applied(self) -> int:
        """Delta applications actually performed across the batch."""
        return sum(item.deltas_applied for item in self.items.values())

    @property
    def naive_delta_applications(self) -> int:
        """Delta applications sequential, cache-less checkouts would perform."""
        return sum(item.chain_length for item in self.items.values())

    @property
    def cost_savings(self) -> float:
        """Recreation cost avoided relative to the Φ prediction."""
        return self.total_predicted_cost - self.total_recreation_cost

    def payloads(self) -> dict[Hashable, Any]:
        """Mapping of request key to materialized payload."""
        return {key: item.payload for key, item in self.items.items()}

    def summary(self) -> dict[str, float]:
        """Flat aggregate numbers, ready for benchmark tables."""
        return {
            "num_requests": float(len(self.items)),
            "deltas_applied": float(self.deltas_applied),
            "naive_delta_applications": float(self.naive_delta_applications),
            "recreation_cost_paid": self.total_recreation_cost,
            "recreation_cost_predicted": self.total_predicted_cost,
            "recreation_cost_saved": self.cost_savings,
        }


class BatchMaterializer:
    """Materializes many objects at once, replaying shared prefixes once.

    The cache persists across :meth:`materialize_many` calls, so a serving
    loop keeps benefiting from earlier batches; call :meth:`clear_cache`
    between measurements that must start cold.
    """

    def __init__(
        self,
        store: ObjectStore,
        encoder: DeltaEncoder,
        *,
        cache_size: int = 64,
    ) -> None:
        self.store = store
        self.encoder = encoder
        self.cache = LRUPayloadCache(cache_size)
        # Chain metadata is content-addressed and immutable, so it is
        # memoized for the materializer's lifetime: repeated materialize()
        # calls walking the same chains (the re-packer's access pattern)
        # read each object's metadata from the backend once, not per call.
        self._chain_info: dict[str, _ChainLink] = {}

    def materialize_many(
        self, requests: Sequence[tuple[Hashable, str]] | Sequence[str]
    ) -> BatchResult:
        """Materialize every requested object.

        ``requests`` is either a sequence of object ids or of ``(key,
        object_id)`` pairs; keys name the items in the result (version ids,
        in the repository's case) and default to the object id itself.
        Duplicate object ids are materialized once and shared.
        """
        normalized: list[tuple[Hashable, str]] = [
            request if isinstance(request, tuple) else (request, request)
            for request in requests
        ]

        # Resolve every distinct chain up front, then order the work so that
        # chains sharing a prefix run back to back: sorting by the chain's
        # id tuple places each prefix immediately before its extensions,
        # which is exactly the order a bounded LRU exploits best.  Only
        # per-object *metadata* (base id + Φ contribution) is retained
        # across batches; the objects themselves are fetched transiently
        # during replay, so peak memory stays bounded by the payload cache
        # no matter how large the batch is.
        chains: dict[str, tuple[str, ...]] = {}
        for _, object_id in normalized:
            if object_id not in chains:
                chains[object_id] = self._resolve_chain(object_id)
        schedule = sorted(chains, key=lambda oid: chains[oid])

        materialized: dict[str, BatchItem] = {}
        for object_id in schedule:
            materialized[object_id] = self._materialize_chain(
                object_id, chains[object_id]
            )

        # Distinct keys can resolve to the same object (content addressing
        # deduplicates identical payloads): the single materialization's cost
        # is charged to the first item only, so the aggregate "actually paid"
        # numbers stay honest; later copies are pure cache hits.  A repeated
        # key keeps its first (charged) item rather than being overwritten
        # by a zeroed copy.
        result = BatchResult()
        charged: set[str] = set()
        for key, object_id in normalized:
            if key in result.items:
                continue
            base = materialized[object_id]
            first = object_id not in charged
            charged.add(object_id)
            result.items[key] = BatchItem(
                key=key,
                object_id=object_id,
                payload=base.payload,
                chain_length=base.chain_length,
                predicted_cost=base.predicted_cost,
                recreation_cost=base.recreation_cost if first else 0.0,
                deltas_applied=base.deltas_applied if first else 0,
                cache_hits=base.cache_hits if first else 1,
            )
        return result

    def materialize(self, object_id: str) -> BatchItem:
        """Materialize a single object through the shared batch cache.

        Useful for serving loops (and the re-packer) that interleave single
        reads with batches but still want prefix amortization.
        """
        return self._materialize_chain(object_id, self._resolve_chain(object_id))

    def clear_cache(self) -> None:
        """Drop every cached payload and chain memo (start the next batch cold)."""
        self.cache.clear()
        self._chain_info.clear()

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _resolve_chain(self, object_id: str) -> tuple[str, ...]:
        """The root-first id chain of ``object_id``.

        ``_chain_info`` memoizes each visited object's base id and Φ
        contribution, so shared prefixes are walked (and their objects
        read) once no matter how many requests traverse them — and only the
        few-bytes metadata is retained, never the objects themselves.
        """
        info = self._chain_info
        reversed_chain: list[str] = []
        seen: set[str] = set()
        current_id: str | None = object_id
        while current_id is not None:
            link = info.get(current_id)
            if link is None:
                obj = self.store.get(current_id)
                link = _ChainLink(
                    base_id=obj.base_id if obj.is_delta else None,
                    phi_contribution=(
                        obj.payload.recreation_cost
                        if obj.is_delta
                        else obj.storage_cost()
                    ),
                )
                info[current_id] = link
            reversed_chain.append(current_id)
            if link.base_id is not None:
                if current_id in seen:
                    raise ObjectNotFoundError(
                        f"delta chain of {object_id!r} contains a cycle"
                    )
                seen.add(current_id)
            current_id = link.base_id
        reversed_chain.reverse()
        return tuple(reversed_chain)

    def _materialize_chain(
        self, object_id: str, chain_ids: tuple[str, ...]
    ) -> BatchItem:
        predicted = sum(
            self._chain_info[oid].phi_contribution for oid in chain_ids
        )
        payload, paid, deltas_applied, cache_hits = replay_chain(
            chain_ids, self.store.get, self.cache, self.encoder
        )
        return BatchItem(
            key=object_id,
            object_id=object_id,
            payload=payload,
            chain_length=len(chain_ids) - 1,
            predicted_cost=predicted,
            recreation_cost=paid,
            deltas_applied=deltas_applied,
            cache_hits=cache_hits,
        )
