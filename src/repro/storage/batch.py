"""Batch checkout: materializing many versions while paying shared work once.

The paper's recreation cost model (the Φ matrix) charges every checkout the
full cost of its delta chain.  A serving system that receives *batches* of
checkouts — a dashboard rebuilding every branch head, a CI farm checking out
fifty snapshots of the same lineage — can do much better: chains that share
a prefix only need that prefix replayed once.

:class:`BatchMaterializer` implements that amortization.  The default
``"dfs"`` strategy overlays every requested chain into a *union tree* (chains
are root-first and each object has a unique base, so the overlay is a
forest) and walks it depth-first, carrying the payload of the current path
on the traversal stack.  Every shared prefix is therefore replayed exactly
once per batch — a guarantee that holds even with a tiny or disabled
payload cache.  The ``"lru"`` strategy keeps the original scheduler:
requests are ordered so that chains sharing a prefix are processed back to
back (sorting by the chain's object-id tuple puts every prefix immediately
before its extensions) and intermediate payloads are parked in a bounded
:class:`~repro.storage.materializer.LRUPayloadCache`, so each request only
pays for the suffix below its deepest cached ancestor.  Both strategies
read and warm the same persistent LRU cache, which is what lets a
long-lived serving process answer repeat requests without replaying
anything.

**Concurrency.**  The materializer is safe for concurrent callers: the
payload cache is atomic, and chain metadata lives in the object store's
incremental cost index (immutable under content addressing, guarded by the
store's index lock) instead of a private memo.  The union forest is
partitioned by **subtree stripe key** (see
:func:`~repro.storage.concurrency.subtree_stripe_keys`): disjoint
subtrees of one fork-heavy root — not just distinct roots — become
independent groups, so with ``max_workers > 1`` they replay in parallel;
an optional ``lock_manager`` (a
:class:`~repro.storage.concurrency.StripedLockManager`) serializes work
per stripe, so concurrent batches and single checkouts touching the
same subtree cooperate through the warm cache instead of duplicating the
replay.

**Worker models.**  ``worker_model="thread"`` (default) replays groups on
a thread pool — ideal when replay cost is I/O (sleeping fetches release
the GIL).  ``worker_model="process"`` dispatches each group to a
``ProcessPoolExecutor`` task (see :mod:`repro.storage.replay_worker`)
that ships only the backend spec, the encoder name and the chain ids,
and returns materialized payloads — CPU-bound encoders then run on real
parallel interpreters instead of serializing on the GIL.  Backends that
cannot be reopened from a spec (``memory://``, wrapped test backends) and
encoders without a registered factory silently fall back to threads.

The result reports, per version and in aggregate, the recreation cost
*actually paid* next to the chain cost the storage plan *predicts* (the Φ
chain sum), so experiments can measure how far real serving sits below the
model the optimizers plan against.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
import weakref
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Mapping, Sequence

from ..delta.base import DeltaEncoder
from ..exceptions import ObjectNotFoundError
from ..obs.metrics import NULL_INSTRUMENT, log_once
from .cache_tiers import TieredPayloadCache
from .concurrency import StripedLockManager, subtree_stripe_keys
from .materializer import ADMISSION_POLICIES, LRUPayloadCache, replay_chain
from .objects import ObjectStore, StoredObject
from .replay_worker import (
    ReplayTaskResult,
    process_safe_spec,
    replay_task,
    replayable_encoder,
)

__all__ = [
    "BatchMaterializer",
    "BatchItem",
    "BatchResult",
    "WarmChainCost",
    "STRATEGIES",
    "EVICTION_POLICIES",
    "ADMISSION_POLICIES",
    "WORKER_MODELS",
]


@dataclass(frozen=True)
class WarmChainCost:
    """What a checkout of one chain tip would pay *right now*.

    The cold model prices every request at its full Φ chain sum; a warm
    serving process only replays the suffix below the deepest cached
    ancestor.  ``phi`` / ``deltas`` are exactly the recreation cost and
    delta applications :func:`~repro.storage.materializer.replay_chain`
    would charge against the current cache contents; ``cached_depth`` is
    the number of chain entries the cache covers (0 = fully cold, in which
    case ``phi`` equals the cold Φ chain sum by construction).
    """

    phi: float
    deltas: int
    cached_depth: int
    chain_length: int

    @property
    def cold(self) -> bool:
        """True when no part of the chain is served by the cache."""
        return self.cached_depth == 0


@dataclass
class BatchItem:
    """One materialized request of a batch.

    ``predicted_cost`` is the full Φ chain sum the storage plan models for
    this version; ``recreation_cost`` is what this request actually paid
    after cache reuse (the two coincide on a cold cache).
    """

    key: Hashable
    object_id: str
    payload: Any
    chain_length: int
    predicted_cost: float
    recreation_cost: float
    deltas_applied: int
    cache_hits: int

    @property
    def amortized(self) -> bool:
        """True when cache reuse made this request cheaper than predicted."""
        return self.recreation_cost < self.predicted_cost


@dataclass
class BatchResult:
    """Per-request items plus the aggregate accounting of a batch."""

    items: dict[Hashable, BatchItem] = field(default_factory=dict)

    @property
    def total_predicted_cost(self) -> float:
        """Σ Φ chain costs — what serving each request alone would pay."""
        return float(sum(item.predicted_cost for item in self.items.values()))

    @property
    def total_recreation_cost(self) -> float:
        """Recreation cost the batch actually paid."""
        return float(sum(item.recreation_cost for item in self.items.values()))

    @property
    def deltas_applied(self) -> int:
        """Delta applications actually performed across the batch."""
        return sum(item.deltas_applied for item in self.items.values())

    @property
    def naive_delta_applications(self) -> int:
        """Delta applications sequential, cache-less checkouts would perform."""
        return sum(item.chain_length for item in self.items.values())

    @property
    def cost_savings(self) -> float:
        """Recreation cost avoided relative to the Φ prediction."""
        return self.total_predicted_cost - self.total_recreation_cost

    def payloads(self) -> dict[Hashable, Any]:
        """Mapping of request key to materialized payload."""
        return {key: item.payload for key, item in self.items.items()}

    def summary(self) -> dict[str, float]:
        """Flat aggregate numbers, ready for benchmark tables."""
        return {
            "num_requests": float(len(self.items)),
            "deltas_applied": float(self.deltas_applied),
            "naive_delta_applications": float(self.naive_delta_applications),
            "recreation_cost_paid": self.total_recreation_cost,
            "recreation_cost_predicted": self.total_predicted_cost,
            "recreation_cost_saved": self.cost_savings,
        }


#: Scheduling strategies understood by :class:`BatchMaterializer`.
STRATEGIES = ("dfs", "lru")

#: Cache-eviction policies understood by :class:`BatchMaterializer`:
#: ``"cost"`` ranks victims by marginal recreation cost (the warm cost
#: model's metric), ``"lru"`` keeps plain recency order.
EVICTION_POLICIES = ("cost", "lru")

#: Replay worker models: ``"thread"`` runs groups on a thread pool in this
#: process; ``"process"`` ships them to a spawn-based ``ProcessPoolExecutor``
#: so CPU-bound delta application escapes the GIL.
WORKER_MODELS = ("thread", "process")

#: How many recent pool-task (pid, started, finished) spans to retain for
#: stats and the concurrency tests.
_SPAN_HISTORY = 64


def _shutdown_executor_holder(holder: dict) -> None:
    """Shut down every executor in ``holder`` (the weakref.finalize hook).

    Module-level on purpose: a ``weakref.finalize`` callback must not hold
    a reference to the materializer it cleans up after, or the finalizer
    itself would keep the object alive.
    """
    executors = list(holder.values())
    holder.clear()
    for executor in executors:
        executor.shutdown(wait=False, cancel_futures=True)


class BatchMaterializer:
    """Materializes many objects at once, replaying shared prefixes once.

    ``strategy`` selects the batch scheduler: ``"dfs"`` (default) walks the
    union tree of all requested chains depth-first and guarantees a single
    replay of every shared prefix regardless of cache size; ``"lru"`` is the
    original sorted-schedule scheduler whose sharing degrades gracefully to
    sequential replay as the cache shrinks.

    ``max_workers`` bounds the worker pool that replays *independent* union
    trees of one batch in parallel (1 keeps everything on the calling
    thread); ``lock_manager`` optionally serializes work per subtree
    stripe across concurrent callers.  ``worker_model`` selects where
    group replay runs: ``"thread"`` (default) or ``"process"`` (a
    spawn-based process pool fed through
    :func:`~repro.storage.replay_worker.replay_task`; falls back to
    threads, once-logged, when the backend spec or encoder cannot cross a
    process boundary).  The cache persists across
    :meth:`materialize_many` calls, so a serving loop keeps benefiting from
    earlier batches; call :meth:`clear_cache` between measurements that
    must start cold.

    The materializer is a context manager (``with BatchMaterializer(...)
    as m:`` closes its pools on exit) and registers a ``weakref.finalize``
    fallback, so one-shot CLI paths that forget :meth:`close` cannot leak
    idle worker threads or processes for the life of the process.
    """

    def __init__(
        self,
        store: ObjectStore,
        encoder: DeltaEncoder,
        *,
        cache_size: int = 64,
        strategy: str = "dfs",
        max_workers: int | None = None,
        lock_manager: StripedLockManager | None = None,
        eviction: str = "cost",
        admission: str = "always",
        spill_dir: str | None = None,
        spill_bytes: int = 0,
        worker_model: str = "thread",
    ) -> None:
        if strategy not in STRATEGIES:
            known = ", ".join(STRATEGIES)
            raise ValueError(f"unknown batch strategy {strategy!r} (known: {known})")
        if eviction not in EVICTION_POLICIES:
            known = ", ".join(EVICTION_POLICIES)
            raise ValueError(f"unknown eviction policy {eviction!r} (known: {known})")
        if admission not in ADMISSION_POLICIES:
            known = ", ".join(ADMISSION_POLICIES)
            raise ValueError(f"unknown admission policy {admission!r} (known: {known})")
        if worker_model not in WORKER_MODELS:
            known = ", ".join(WORKER_MODELS)
            raise ValueError(f"unknown worker model {worker_model!r} (known: {known})")
        self.store = store
        self.encoder = encoder
        self.strategy = strategy
        self.eviction = eviction
        self.admission = admission
        self.requested_worker_model = worker_model
        self.worker_model_fallback: str | None = None
        if worker_model == "process":
            spec = store.backend.spec()
            if not process_safe_spec(spec):
                self.worker_model_fallback = (
                    f"backend {spec!r} cannot be reopened from a worker process"
                )
            elif not replayable_encoder(encoder):
                self.worker_model_fallback = (
                    f"encoder {getattr(encoder, 'name', '?')!r} has no "
                    "registered zero-argument factory"
                )
            if self.worker_model_fallback is not None:
                log_once(
                    "batch:worker_model:%s" % spec,
                    "worker_model=process unavailable (%s); using threads",
                    self.worker_model_fallback,
                )
                worker_model = "thread"
        self.worker_model = worker_model
        victim_cost = self._marginal_payload_cost if eviction == "cost" else None
        if spill_dir is not None and int(spill_bytes) > 0:
            # Two-tier warm cache: the bounded memory LRU spills through to
            # a compressed disk tier, so warm capacity scales past RAM.
            self.cache: LRUPayloadCache = TieredPayloadCache(
                cache_size,
                spill_dir=spill_dir,
                spill_bytes=int(spill_bytes),
                victim_cost=victim_cost,
                admission=admission,
            )
        else:
            self.cache = LRUPayloadCache(
                cache_size, victim_cost=victim_cost, admission=admission
            )
        self.max_workers = max(1, int(max_workers)) if max_workers else 1
        self.lock_manager = lock_manager
        # Both pools live in one holder dict shared with the finalizer:
        # whichever of close()/__exit__/GC runs first empties it, and the
        # others become no-ops.
        self._executors: dict[str, Executor] = {}
        self._executor_lock = threading.Lock()
        self._finalizer = weakref.finalize(
            self, _shutdown_executor_holder, self._executors
        )
        # Replay-pool accounting (satellite observability): group
        # dispatches by model, in-flight process tasks, worker provenance.
        self._pool_lock = threading.Lock()
        self._pool_tasks = {"thread": 0, "process": 0}
        self._pool_queue_depth = 0
        self._worker_pids: set[int] = set()
        self.recent_task_spans: list[tuple[int, float, float]] = []
        # Live instruments replace these no-ops when bind_metrics() runs.
        self._metrics_on = False
        self._m_deltas = NULL_INSTRUMENT
        self._m_bytes = NULL_INSTRUMENT
        self._m_warm_error = NULL_INSTRUMENT
        self._m_pool_thread = NULL_INSTRUMENT
        self._m_pool_process = NULL_INSTRUMENT

    def bind_metrics(self, registry) -> None:
        """Attach materializer counters and scrape-time cache gauges.

        Hot-path increments stay cheap (one pre-bound counter each);
        cache hit/miss/eviction numbers are copied from the cache's own
        counters by a collector at scrape time, so cache operations pay
        nothing at all.
        """
        self._metrics_on = bool(getattr(registry, "enabled", True))
        self._m_deltas = registry.counter(
            "repro_materialize_deltas_total",
            "Delta applications performed by the materializer.",
        )
        self._m_bytes = registry.counter(
            "repro_materialize_bytes_total",
            "Recreation cost (payload units) actually paid materializing.",
        )
        self._m_warm_error = registry.histogram(
            "repro_warm_cost_error",
            "Relative error of the warm cost model: |predicted - actual| "
            "/ max(predicted, actual, 1) per single checkout.",
            buckets=(0.001, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0),
        )
        pool_tasks = registry.counter(
            "repro_replay_pool_tasks_total",
            "Replay group dispatches by worker model.",
            ("model",),
        )
        self._m_pool_thread = pool_tasks.labels("thread")
        self._m_pool_process = pool_tasks.labels("process")
        pool_queue = registry.gauge(
            "repro_replay_pool_queue_depth",
            "Replay tasks submitted to the process pool, not yet completed.",
        )
        pool_workers = registry.gauge(
            "repro_replay_pool_workers",
            "Distinct replay worker processes observed (lifetime).",
        )
        hits = registry.gauge("repro_cache_hits", "Payload cache hits (lifetime).")
        misses = registry.gauge(
            "repro_cache_misses", "Payload cache misses (lifetime)."
        )
        evictions = registry.gauge(
            "repro_cache_evictions",
            "Payload cache evictions by reason (lifetime).",
            ("reason",),
        )
        cost_ev = evictions.labels("cost")
        lru_ev = evictions.labels("lru")
        entries = registry.gauge("repro_cache_entries", "Payload cache entries.")
        capacity = registry.gauge("repro_cache_capacity", "Payload cache capacity.")
        rejections = registry.gauge(
            "repro_cache_admission_rejections",
            "Payloads refused at cache admission (lifetime).",
        )
        tier = registry.gauge(
            "repro_cache_tier",
            "Disk spill tier state by field (hits/misses/entries/bytes/"
            "spills/corruption_drops).",
            ("field",),
        )
        tier_fields = {
            name: tier.labels(name)
            for name in (
                "hits",
                "misses",
                "entries",
                "bytes",
                "spills",
                "corruption_drops",
            )
        }
        cache = self.cache

        def collect(_registry) -> None:
            hits.set(cache.hits)
            misses.set(cache.misses)
            cost_ev.set(cache.cost_evictions)
            lru_ev.set(cache.lru_evictions)
            entries.set(len(cache))
            capacity.set(cache.capacity)
            rejections.set(cache.admission_rejections)
            disk = getattr(cache, "disk", None)
            if disk is not None:
                tier_fields["hits"].set(disk.hits)
                tier_fields["misses"].set(disk.misses)
                tier_fields["entries"].set(len(disk))
                tier_fields["bytes"].set(disk.bytes_used)
                tier_fields["spills"].set(disk.spills)
                tier_fields["corruption_drops"].set(disk.corruption_drops)
            with self._pool_lock:
                pool_queue.set(self._pool_queue_depth)
                pool_workers.set(len(self._worker_pids))

        registry.register_collector(collect)

    def _marginal_payload_cost(self, object_id: str) -> float | None:
        """Marginal recreation cost of one cached payload (eviction rank).

        What a request would re-pay if exactly ``object_id`` left the
        cache: the Φ suffix from it down to its deepest *other* cached
        ancestor, answered by the store's cost index without any backend
        read.  Invoked by the cache while its lock is held — the store
        never takes the cache lock, so the ordering stays acyclic.
        """
        return self.store.marginal_chain_cost(
            object_id, lambda oid: oid != object_id and oid in self.cache
        )

    def materialize_many(
        self, requests: Sequence[tuple[Hashable, str]] | Sequence[str]
    ) -> BatchResult:
        """Materialize every requested object.

        ``requests`` is either a sequence of object ids or of ``(key,
        object_id)`` pairs; keys name the items in the result (version ids,
        in the repository's case) and default to the object id itself.
        Duplicate object ids are materialized once and shared.
        """
        normalized: list[tuple[Hashable, str]] = [
            request if isinstance(request, tuple) else (request, request)
            for request in requests
        ]

        # Resolve every distinct chain up front from the store's cost
        # index.  On a chain-following remote backend every unresolved tip
        # is primed — chains *and* their objects — in one multiget round
        # trip, and the fetched objects feed the replay below directly.
        distinct = list(dict.fromkeys(object_id for _, object_id in normalized))
        prefetched = self.store.prime_chains(distinct)
        chains: dict[str, tuple[str, ...]] = {
            object_id: self.store.chain_ids(object_id) for object_id in distinct
        }

        if self.strategy == "dfs":
            materialized = self._materialize_forest(chains, prefetched)
        else:
            # LRU fallback: order the work so that chains sharing a prefix
            # run back to back — sorting by the chain's id tuple places each
            # prefix immediately before its extensions, which is exactly the
            # order a bounded LRU exploits best.  Peak memory stays bounded
            # by the payload cache no matter how large the batch is.  The
            # schedule stays sequential (no worker pool — the sorted order
            # *is* the strategy), but each chain's replay still holds its
            # subtree stripe lock so concurrent callers cooperate through
            # the cache instead of replaying the same chain twice.
            schedule = sorted(chains, key=lambda oid: chains[oid])
            stripes = subtree_stripe_keys(chains)
            fetch = self._fetcher(prefetched)
            materialized = {}
            for object_id in schedule:
                with self._chain_guard(stripes[object_id]):
                    materialized[object_id] = self._materialize_chain(
                        object_id, chains[object_id], fetch=fetch
                    )

        # Distinct keys can resolve to the same object (content addressing
        # deduplicates identical payloads): the single materialization's cost
        # is charged to the first item only, so the aggregate "actually paid"
        # numbers stay honest; later copies are pure cache hits.  A repeated
        # key keeps its first (charged) item rather than being overwritten
        # by a zeroed copy.
        result = BatchResult()
        charged: set[str] = set()
        for key, object_id in normalized:
            if key in result.items:
                continue
            base = materialized[object_id]
            first = object_id not in charged
            charged.add(object_id)
            result.items[key] = BatchItem(
                key=key,
                object_id=object_id,
                payload=base.payload,
                chain_length=base.chain_length,
                predicted_cost=base.predicted_cost,
                recreation_cost=base.recreation_cost if first else 0.0,
                deltas_applied=base.deltas_applied if first else 0,
                cache_hits=base.cache_hits if first else 1,
            )
        return result

    def materialize(self, object_id: str) -> BatchItem:
        """Materialize a single object through the shared batch cache.

        Useful for serving loops (and the re-packer) that interleave single
        reads with batches but still want prefix amortization.  On a
        chain-following remote backend the uncached part of the chain
        arrives in one round trip and is replayed from that response,
        instead of one HTTP exchange per object — and warm repeats (chain
        metadata indexed, payloads cached) perform no exchange at all.
        """
        predicted = None
        if self._metrics_on:
            # Price the chain against the current cache *before* the replay
            # warms it — dictionary walks only, no payload touched.
            try:
                predicted = self.warm_chain_cost(object_id).phi
            except ObjectNotFoundError:
                predicted = None
        if self.worker_model == "process":
            item = self._materialize_single_process(object_id)
        elif getattr(self.store.backend, "follows_chains", False):
            item = self._materialize_remote(object_id)
        else:
            item = self._materialize_chain(object_id, self.store.chain_ids(object_id))
        if predicted is not None:
            actual = item.recreation_cost
            self._m_warm_error.observe(
                abs(predicted - actual) / max(predicted, actual, 1.0)
            )
        return item

    def _materialize_remote(self, object_id: str) -> BatchItem:
        """Segment-batched replay against a chain-following remote backend."""
        chain_ids = self.store.cached_chain_ids(object_id)
        if chain_ids is None:
            # First sight of this chain: one multiget resolves *and* carries
            # every object, so the replay below fetches nothing else.
            chain = self.store.delta_chain(object_id)
            by_id = {obj.object_id: obj for obj in chain}
            return self._materialize_chain(
                object_id,
                tuple(obj.object_id for obj in chain),
                fetch=by_id.__getitem__,
            )
        # Metadata already indexed: only the suffix below the deepest
        # cached payload needs objects — prefetch it in one round trip
        # (zero round trips when the tip itself is cached).
        start = 0
        for index in range(len(chain_ids) - 1, -1, -1):
            if chain_ids[index] in self.cache:
                start = index
                break
        needed = [oid for oid in chain_ids[start:] if oid not in self.cache]
        prefetched = self.store.get_many(needed) if needed else {}
        return self._materialize_chain(
            object_id, chain_ids, fetch=self._fetcher(prefetched)
        )

    def predicted_chain_cost(self, object_id: str) -> float:
        """Φ chain sum of ``object_id`` from the store's cost index alone.

        No payload is replayed: the incremental index (filled at commit
        time, backfilled from reads) answers with dictionary walks.  This
        is what prices the *expected* recreation cost of a workload before
        and after a repack.
        """
        return self.store.chain_stats(object_id).phi_total

    def warm_chain_cost(self, object_id: str) -> WarmChainCost:
        """Price one chain against the *current* cache contents.

        Performs exactly the probe :func:`replay_chain` opens with — scan
        the chain tip-down for the deepest cached payload — and prices the
        remaining suffix from the store's cost index (both the tip's and
        the anchor's :class:`~repro.storage.objects.ChainStats` are
        memoized by one walk, so repeat pricing is a pair of dictionary
        lookups).  No payload is fetched or replayed, and the probe leaves
        the cache's recency order and hit/miss counters untouched.  With
        an empty cache this degrades to the cold Φ chain sum the storage
        plan models.
        """
        chain_ids = self.store.chain_ids(object_id)
        tip = self.store.chain_stats(object_id)
        for index in range(len(chain_ids) - 1, -1, -1):
            if chain_ids[index] in self.cache:
                anchor = self.store.chain_stats(chain_ids[index])
                return WarmChainCost(
                    phi=tip.phi_total - anchor.phi_total,
                    deltas=tip.num_deltas - anchor.num_deltas,
                    cached_depth=index + 1,
                    chain_length=tip.length,
                )
        return WarmChainCost(
            phi=tip.phi_total,
            deltas=tip.num_deltas,
            cached_depth=0,
            chain_length=tip.length,
        )

    def cache_info(self) -> dict[str, object]:
        """Counters of the warm cache, one flat dict per tier for stats."""
        cache = self.cache
        info: dict[str, object] = {
            "size": len(cache),
            "capacity": cache.capacity,
            "hits": cache.hits,
            "misses": cache.misses,
            "cost_evictions": cache.cost_evictions,
            "lru_evictions": cache.lru_evictions,
            "admission": self.admission,
            "admission_rejections": cache.admission_rejections,
            "eviction": self.eviction,
        }
        disk = getattr(cache, "disk", None)
        if disk is not None:
            info["tier"] = {
                "directory": disk.directory,
                "max_bytes": disk.max_bytes,
                "bytes_used": disk.bytes_used,
                "entries": len(disk),
                "hits": disk.hits,
                "misses": disk.misses,
                "spills": disk.spills,
                "cost_evictions": disk.cost_evictions,
                "lru_evictions": disk.lru_evictions,
                "corruption_drops": disk.corruption_drops,
            }
        return info

    def clear_cache(self) -> None:
        """Drop every cached payload (start the next batch cold).

        Chain metadata is *not* dropped: it lives in the store's cost
        index, is immutable under content addressing, and entries for
        objects a repack removes are evicted by the store itself.
        """
        self.cache.clear()

    def close(self) -> None:
        """Shut down the worker pools (idempotent; the materializer keeps
        working afterwards — a later parallel batch simply recreates them).

        Short-lived materializers no longer *have* to call this: the
        context-manager protocol closes on ``__exit__``, and a
        ``weakref.finalize`` fallback shuts the pools down at garbage
        collection, so a forgotten one-shot CLI path cannot accumulate
        idle worker threads or processes.
        """
        with self._executor_lock:
            executors = dict(self._executors)
            self._executors.clear()
        for executor in executors.values():
            executor.shutdown(wait=False, cancel_futures=True)

    def __enter__(self) -> "BatchMaterializer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _chain_guard(self, root_id: str):
        """The stripe lock guarding ``root_id``'s chain (no-op unmanaged)."""
        if self.lock_manager is None:
            return nullcontext()
        return self.lock_manager.holding(root_id)

    def _fetcher(
        self, prefetched: Mapping[str, StoredObject]
    ) -> Callable[[str], StoredObject]:
        """A fetch hook that consumes prefetched objects before the store."""
        if not prefetched:
            return self.store.get

        def fetch(oid: str) -> StoredObject:
            obj = prefetched.get(oid)
            return obj if obj is not None else self.store.get(oid)

        return fetch

    def _materialize_forest(
        self,
        chains: dict[str, tuple[str, ...]],
        prefetched: Mapping[str, StoredObject],
    ) -> dict[str, BatchItem]:
        """Replay the union forest in parallel groups.

        The grouping depends on the worker model:

        * ``thread`` — one group per chain *root*, each an exactly-once
          union-tree DFS (the batch guarantee: no delta object replays
          twice, whatever the cache size).  Parallelism comes from two
          places: root groups fan out across worker threads, and a batch
          that collapses into a *single* fork-heavy root tree replays its
          disjoint subtrees on parallel branch walkers inside the one DFS
          (see :meth:`_materialize_union_tree`) — so fork fans no longer
          serialize on their common root.
        * ``process`` — one group per batch-local **subtree stripe key**
          (the node below the deepest fork the batch's chains exhibit),
          each shipped to the process pool as an independent replay task.
          A prefix above a fork point may replay once per side — the cost
          of giving every subtree its own GIL; content addressing keeps
          the results byte-identical.

        Each group's replay optionally holds a stripe lock, so concurrent
        batches (and single checkouts serialized the same way by the
        serving layer) cooperate on a chain instead of racing it.
        """
        process_model = self.worker_model == "process"
        groups: dict[str, dict[str, tuple[str, ...]]] = {}
        if process_model:
            stripes = subtree_stripe_keys(chains)
            for object_id, chain_ids in chains.items():
                groups.setdefault(stripes[object_id], {})[object_id] = chain_ids
        else:
            for object_id, chain_ids in chains.items():
                groups.setdefault(chain_ids[0], {})[object_id] = chain_ids
        group_keys = list(groups)
        # With every chain in one root tree, the group level offers no
        # parallelism — let the union-tree DFS walk fork branches on the
        # pool instead.  (Never both: branch walkers submitting to the
        # executor from inside pooled group tasks could starve a saturated
        # pool into deadlock.)
        branch_parallel = (
            not process_model and self.max_workers > 1 and len(group_keys) == 1
        )

        def run_group(key: str) -> dict[str, BatchItem]:
            with self._chain_guard(key):
                if process_model:
                    return self._materialize_group_process(groups[key])
                self._count_pool_task("thread")
                return self._materialize_union_tree(
                    groups[key], prefetched, parallel_branches=branch_parallel
                )

        materialized: dict[str, BatchItem] = {}
        if self.max_workers > 1 and len(group_keys) > 1:
            futures = [
                self._get_executor().submit(run_group, key) for key in group_keys
            ]
            # Drain every future before propagating any failure: an
            # abandoned sibling would keep reading the store after the
            # caller released its locks (and its error would vanish).
            errors: list[BaseException] = []
            for future in futures:
                try:
                    materialized.update(future.result())
                except BaseException as error:
                    errors.append(error)
            if errors:
                raise errors[0]
        else:
            for key in group_keys:
                materialized.update(run_group(key))
        return materialized

    def _get_executor(self) -> ThreadPoolExecutor:
        with self._executor_lock:
            executor = self._executors.get("thread")
            if executor is None:
                executor = ThreadPoolExecutor(
                    max_workers=self.max_workers,
                    thread_name_prefix="repro-materialize",
                )
                self._executors["thread"] = executor
            return executor  # type: ignore[return-value]

    def _get_process_executor(self) -> ProcessPoolExecutor:
        with self._executor_lock:
            executor = self._executors.get("process")
            if executor is None:
                # spawn, never fork: the serving process is multithreaded
                # (HTTP handlers, repack stager), and forking a threaded
                # process inherits locks in undefined states.
                executor = ProcessPoolExecutor(
                    max_workers=self.max_workers,
                    mp_context=multiprocessing.get_context("spawn"),
                )
                self._executors["process"] = executor
            return executor  # type: ignore[return-value]

    def _count_pool_task(self, model: str) -> None:
        with self._pool_lock:
            self._pool_tasks[model] += 1
        if self._metrics_on:
            if model == "process":
                self._m_pool_process.inc()
            else:
                self._m_pool_thread.inc()

    def pool_info(self) -> dict[str, object]:
        """Replay-pool counters for ``stats()``: model, tasks, workers."""
        with self._pool_lock:
            return {
                "worker_model": self.worker_model,
                "requested_worker_model": self.requested_worker_model,
                "worker_model_fallback": self.worker_model_fallback,
                "tasks": dict(self._pool_tasks),
                "queue_depth": self._pool_queue_depth,
                "worker_pids": sorted(self._worker_pids),
            }

    def _run_replay_task(
        self, chains: Mapping[str, tuple[str, ...]]
    ) -> ReplayTaskResult:
        """Ship one stripe's chains to the process pool and fold the result.

        The task carries only picklable descriptions (spec, encoder name,
        chain ids); the worker's per-hop timing observations are replayed
        into this store's measured-cost index, and provenance (pid, wall
        span) is recorded for stats and the concurrency tests.
        """
        executor = self._get_process_executor()
        with self._pool_lock:
            self._pool_queue_depth += 1
        try:
            future = executor.submit(
                replay_task,
                self.store.backend.spec(),
                self.encoder.name,
                dict(chains),
                max(0, self.cache.capacity),
            )
            result = future.result()
        finally:
            with self._pool_lock:
                self._pool_queue_depth -= 1
        self._count_pool_task("process")
        with self._pool_lock:
            self._worker_pids.add(result.pid)
            self.recent_task_spans.append(
                (result.pid, result.started, result.finished)
            )
            del self.recent_task_spans[:-_SPAN_HISTORY]
        for object_id, seconds in result.observations:
            self.store.observe_apply(object_id, seconds)
        if self._metrics_on:
            self._m_deltas.inc(
                sum(outcome.deltas_applied for outcome in result.outcomes)
            )
            self._m_bytes.inc(sum(outcome.cost_paid for outcome in result.outcomes))
        return result

    def _materialize_group_process(
        self, chains: Mapping[str, tuple[str, ...]]
    ) -> dict[str, BatchItem]:
        """Materialize one stripe group via the process pool.

        Tips already warm in the parent's shared cache are served locally
        (no dispatch at all); the rest travel as one task.  Returned tip
        payloads re-warm the parent cache, so repeats — from any worker
        model — hit locally.  Intermediate chain payloads stay in the
        *worker's* cache only: shipping every intermediate back would cost
        more in pickling than the replay saved.
        """
        items: dict[str, BatchItem] = {}
        dispatch: dict[str, tuple[str, ...]] = {}
        for object_id, chain_ids in chains.items():
            cached = self.cache.get(object_id)
            if not LRUPayloadCache.is_miss(cached):
                items[object_id] = BatchItem(
                    key=object_id,
                    object_id=object_id,
                    payload=cached,
                    chain_length=len(chain_ids) - 1,
                    predicted_cost=self.store.chain_stats(object_id).phi_total,
                    recreation_cost=0.0,
                    deltas_applied=0,
                    cache_hits=1,
                )
            else:
                dispatch[object_id] = chain_ids
        if dispatch:
            result = self._run_replay_task(dispatch)
            for outcome in result.outcomes:
                self.cache.put(outcome.object_id, outcome.payload)
                chain_ids = dispatch[outcome.object_id]
                items[outcome.object_id] = BatchItem(
                    key=outcome.object_id,
                    object_id=outcome.object_id,
                    payload=outcome.payload,
                    chain_length=len(chain_ids) - 1,
                    predicted_cost=self.store.chain_stats(
                        outcome.object_id
                    ).phi_total,
                    recreation_cost=outcome.cost_paid,
                    deltas_applied=outcome.deltas_applied,
                    cache_hits=outcome.cache_hits,
                )
        return items

    def _materialize_single_process(self, object_id: str) -> BatchItem:
        """Single-checkout hot path under ``worker_model="process"``.

        Concurrent request threads each dispatch their chain as its own
        pool task, so CPU-bound encoders overlap across worker processes
        instead of serializing on this process's GIL.
        """
        chain_ids = self.store.chain_ids(object_id)
        return self._materialize_group_process({object_id: chain_ids})[object_id]

    def _materialize_union_tree(
        self,
        chains: dict[str, tuple[str, ...]],
        prefetched: Mapping[str, StoredObject] | None = None,
        *,
        parallel_branches: bool = False,
    ) -> dict[str, BatchItem]:
        """Materialize every requested chain via one DFS over their union.

        Chains are root-first and every delta object names a unique base, so
        overlaying them yields a forest.  The traversal carries the payload
        of the current root-to-node path on its stack, which is what lets a
        shared prefix be replayed exactly once per batch even when the LRU
        cache is tiny or disabled; the cache is still consulted (warm
        serving across batches) and re-warmed on the way down.

        With ``parallel_branches`` the walk fans out at fork nodes: the
        current walker keeps one child and hands every sibling subtree —
        with its base payload already materialized — to a worker thread.
        Walkers never wait on each other (only the caller drains them), so
        a saturated pool degrades to sequential instead of deadlocking,
        and each union-tree node is still visited exactly once.  Only call
        it from an unpooled thread.

        Per-item accounting charges each node's actually-paid cost to the
        first request (in ``chains`` order) whose chain contains it, so the
        per-item numbers sum to exactly what the batch paid and every item
        stays at or below its Φ prediction.
        """
        prefetched = prefetched or {}
        # Trim every chain at its deepest cached ancestor (the same probe
        # replay_chain performs), so a warm repeat request replays nothing
        # even when intermediate prefix nodes have been evicted.  The cached
        # payload is captured *now*: puts during the traversal can evict it
        # from the LRU before its subtree is reached, and a trimmed suffix
        # must never find itself without a base.
        captured: dict[str, Any] = {}
        trimmed: dict[str, tuple[str, ...]] = {}
        for object_id, chain_ids in chains.items():
            start = 0
            for index in range(len(chain_ids) - 1, -1, -1):
                cached = self.cache.get(chain_ids[index])
                if not LRUPayloadCache.is_miss(cached):
                    captured.setdefault(chain_ids[index], cached)
                    start = index
                    break
            trimmed[object_id] = chain_ids[start:]

        # A node can enter the tree both as a trim-point root (one chain
        # found it cached) and as an interior node of a longer untrimmed
        # chain; first insertion wins, and since every trim point carries a
        # captured payload the traversal is correct either way.
        children: dict[str | None, list[str]] = {}
        in_tree: set[str] = set()
        for chain_ids in trimmed.values():
            parent: str | None = None
            for oid in chain_ids:
                if oid not in in_tree:
                    in_tree.add(oid)
                    children.setdefault(parent, []).append(oid)
                parent = oid
        for kids in children.values():
            kids.sort()

        # On a remote backend, fetch every node the traversal may need in
        # one batched exchange up front (the union-tree half of the
        # multiget story): without it the DFS below would cost one round
        # trip per uncached node.
        if getattr(self.store.backend, "follows_chains", False):
            needed = [
                oid
                for oid in in_tree
                if oid not in prefetched
                and oid not in captured
                and oid not in self.cache
            ]
            if needed:
                prefetched = {**prefetched, **self.store.get_many(needed)}
        fetch = self._fetcher(prefetched)

        requested = set(chains)
        payloads: dict[str, Any] = {}
        node_cost: dict[str, float] = {}
        node_is_delta_replay: dict[str, bool] = {}
        node_cache_hit: dict[str, bool] = {}

        def visit(oid: str, base_payload: Any) -> Any:
            # Each union-tree node is visited by exactly one walker, so the
            # per-node dict writes never race; cache and store are
            # internally locked.
            cached = captured[oid] if oid in captured else self.cache.get(oid)
            if oid in captured or not LRUPayloadCache.is_miss(cached):
                payload = cached
                node_cost[oid] = 0.0
                node_is_delta_replay[oid] = False
                node_cache_hit[oid] = True
            else:
                started = time.perf_counter()
                obj = fetch(oid)
                if not obj.is_delta:
                    payload = obj.payload
                    node_cost[oid] = obj.storage_cost()
                    node_is_delta_replay[oid] = False
                else:
                    if base_payload is None:
                        raise ObjectNotFoundError(
                            f"delta object {oid!r} has no materialized base"
                        )
                    payload = self.encoder.apply(base_payload, obj.payload)
                    node_cost[oid] = obj.payload.recreation_cost
                    node_is_delta_replay[oid] = True
                self.store.observe_apply(oid, time.perf_counter() - started)
                node_cache_hit[oid] = False
                self.cache.put(oid, payload)
            if oid in requested:
                payloads[oid] = payload
            return payload

        roots = children.get(None, [])
        if parallel_branches and self.max_workers > 1:
            self._walk_branches_parallel(roots, children, visit)
        else:
            stack: list[tuple[str, Any]] = [(root, None) for root in reversed(roots)]
            while stack:
                oid, base_payload = stack.pop()
                payload = visit(oid, base_payload)
                for child in reversed(children.get(oid, [])):
                    stack.append((child, payload))

        if self._metrics_on:
            self._m_deltas.inc(sum(1 for v in node_is_delta_replay.values() if v))
            self._m_bytes.inc(sum(node_cost.values()))

        charged: set[str] = set()
        materialized: dict[str, BatchItem] = {}
        for object_id, chain_ids in chains.items():
            paid = 0.0
            deltas_applied = 0
            suffix = trimmed[object_id]
            # Nodes above the trim point were served by the cached ancestor,
            # never this request; only the traversed suffix can be charged.
            cache_hits = len(chain_ids) - len(suffix)
            for oid in suffix:
                if oid in charged:
                    cache_hits += 1
                    continue
                charged.add(oid)
                if node_cache_hit[oid]:
                    cache_hits += 1
                else:
                    paid += node_cost[oid]
                    if node_is_delta_replay[oid]:
                        deltas_applied += 1
            materialized[object_id] = BatchItem(
                key=object_id,
                object_id=object_id,
                payload=payloads[object_id],
                chain_length=len(chain_ids) - 1,
                predicted_cost=self.store.chain_stats(object_id).phi_total,
                recreation_cost=paid,
                deltas_applied=deltas_applied,
                cache_hits=cache_hits,
            )
        return materialized

    def _walk_branches_parallel(
        self,
        roots: Sequence[str],
        children: Mapping[str | None, Sequence[str]],
        visit: Callable[[str, Any], Any],
    ) -> None:
        """Walk the union forest, forking a worker thread per sibling subtree.

        Each walker descends one child at every node and submits the
        remaining siblings (with the just-materialized base payload) to the
        thread pool.  Walkers never block on another walker's future — the
        caller alone drains the growing future list — so walkers cannot
        deadlock each other however small the pool is.  The caller itself
        may hold this group's stripe lock while draining, and the pool's
        workers may be busy with *another* batch's groups blocked on that
        very stripe — so the drain must not wait on a future that has not
        started: it cancels queued futures and runs their walks inline,
        guaranteeing progress whatever the pool is wedged on.  Every error
        surfaces only after all walkers finished touching the store.
        """
        futures: list = []
        futures_lock = threading.Lock()

        def walk(oid: str, base_payload: Any) -> None:
            stack: list[tuple[str, Any]] = [(oid, base_payload)]
            while stack:
                node, base = stack.pop()
                payload = visit(node, base)
                kids = children.get(node, [])
                if not kids:
                    continue
                for sibling in kids[1:]:
                    with futures_lock:
                        futures.append(
                            (
                                self._get_executor().submit(walk, sibling, payload),
                                sibling,
                                payload,
                            )
                        )
                stack.append((kids[0], payload))

        for root in roots[1:]:
            with futures_lock:
                futures.append(
                    (self._get_executor().submit(walk, root, None), root, None)
                )
        if roots:
            walk(roots[0], None)
        errors: list[BaseException] = []
        index = 0
        while True:
            with futures_lock:
                if index >= len(futures):
                    break
                future, oid, base_payload = futures[index]
            index += 1
            if future.cancel():
                # Still queued — a busy (or wedged) pool never ran it.
                # Run it here so the drain cannot block behind workers
                # that are themselves waiting on this caller's locks.
                try:
                    walk(oid, base_payload)
                except BaseException as error:
                    errors.append(error)
                continue
            try:
                future.result()
            except BaseException as error:
                errors.append(error)
        if errors:
            raise errors[0]

    def _materialize_chain(
        self,
        object_id: str,
        chain_ids: tuple[str, ...],
        fetch: Callable[[str], Any] | None = None,
    ) -> BatchItem:
        payload, paid, deltas_applied, cache_hits = replay_chain(
            chain_ids, fetch if fetch is not None else self.store.get,
            self.cache, self.encoder, observe=self.store.observe_apply,
        )
        if self._metrics_on:
            self._m_deltas.inc(deltas_applied)
            self._m_bytes.inc(paid)
        return BatchItem(
            key=object_id,
            object_id=object_id,
            payload=payload,
            chain_length=len(chain_ids) - 1,
            predicted_cost=self.store.chain_stats(object_id).phi_total,
            recreation_cost=paid,
            deltas_applied=deltas_applied,
            cache_hits=cache_hits,
        )
