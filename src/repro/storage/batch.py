"""Batch checkout: materializing many versions while paying shared work once.

The paper's recreation cost model (the Φ matrix) charges every checkout the
full cost of its delta chain.  A serving system that receives *batches* of
checkouts — a dashboard rebuilding every branch head, a CI farm checking out
fifty snapshots of the same lineage — can do much better: chains that share
a prefix only need that prefix replayed once.

:class:`BatchMaterializer` implements that amortization.  The default
``"dfs"`` strategy overlays every requested chain into a *union tree* (chains
are root-first and each object has a unique base, so the overlay is a
forest) and walks it depth-first, carrying the payload of the current path
on the traversal stack.  Every shared prefix is therefore replayed exactly
once per batch — a guarantee that holds even with a tiny or disabled
payload cache.  The ``"lru"`` strategy keeps the original scheduler:
requests are ordered so that chains sharing a prefix are processed back to
back (sorting by the chain's object-id tuple puts every prefix immediately
before its extensions) and intermediate payloads are parked in a bounded
:class:`~repro.storage.materializer.LRUPayloadCache`, so each request only
pays for the suffix below its deepest cached ancestor.  Both strategies
read and warm the same persistent LRU cache, which is what lets a
long-lived serving process answer repeat requests without replaying
anything.

The result reports, per version and in aggregate, the recreation cost
*actually paid* next to the chain cost the storage plan *predicts* (the Φ
chain sum), so experiments can measure how far real serving sits below the
model the optimizers plan against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Sequence

from ..delta.base import DeltaEncoder
from ..exceptions import ObjectNotFoundError
from .materializer import LRUPayloadCache, replay_chain
from .objects import ObjectStore

__all__ = ["BatchMaterializer", "BatchItem", "BatchResult", "STRATEGIES"]


@dataclass(frozen=True)
class _ChainLink:
    """Per-object chain metadata retained across a batch (never the object)."""

    base_id: str | None
    phi_contribution: float


@dataclass
class BatchItem:
    """One materialized request of a batch.

    ``predicted_cost`` is the full Φ chain sum the storage plan models for
    this version; ``recreation_cost`` is what this request actually paid
    after cache reuse (the two coincide on a cold cache).
    """

    key: Hashable
    object_id: str
    payload: Any
    chain_length: int
    predicted_cost: float
    recreation_cost: float
    deltas_applied: int
    cache_hits: int

    @property
    def amortized(self) -> bool:
        """True when cache reuse made this request cheaper than predicted."""
        return self.recreation_cost < self.predicted_cost


@dataclass
class BatchResult:
    """Per-request items plus the aggregate accounting of a batch."""

    items: dict[Hashable, BatchItem] = field(default_factory=dict)

    @property
    def total_predicted_cost(self) -> float:
        """Σ Φ chain costs — what serving each request alone would pay."""
        return float(sum(item.predicted_cost for item in self.items.values()))

    @property
    def total_recreation_cost(self) -> float:
        """Recreation cost the batch actually paid."""
        return float(sum(item.recreation_cost for item in self.items.values()))

    @property
    def deltas_applied(self) -> int:
        """Delta applications actually performed across the batch."""
        return sum(item.deltas_applied for item in self.items.values())

    @property
    def naive_delta_applications(self) -> int:
        """Delta applications sequential, cache-less checkouts would perform."""
        return sum(item.chain_length for item in self.items.values())

    @property
    def cost_savings(self) -> float:
        """Recreation cost avoided relative to the Φ prediction."""
        return self.total_predicted_cost - self.total_recreation_cost

    def payloads(self) -> dict[Hashable, Any]:
        """Mapping of request key to materialized payload."""
        return {key: item.payload for key, item in self.items.items()}

    def summary(self) -> dict[str, float]:
        """Flat aggregate numbers, ready for benchmark tables."""
        return {
            "num_requests": float(len(self.items)),
            "deltas_applied": float(self.deltas_applied),
            "naive_delta_applications": float(self.naive_delta_applications),
            "recreation_cost_paid": self.total_recreation_cost,
            "recreation_cost_predicted": self.total_predicted_cost,
            "recreation_cost_saved": self.cost_savings,
        }


#: Scheduling strategies understood by :class:`BatchMaterializer`.
STRATEGIES = ("dfs", "lru")


class BatchMaterializer:
    """Materializes many objects at once, replaying shared prefixes once.

    ``strategy`` selects the batch scheduler: ``"dfs"`` (default) walks the
    union tree of all requested chains depth-first and guarantees a single
    replay of every shared prefix regardless of cache size; ``"lru"`` is the
    original sorted-schedule scheduler whose sharing degrades gracefully to
    sequential replay as the cache shrinks.

    The cache persists across :meth:`materialize_many` calls, so a serving
    loop keeps benefiting from earlier batches; call :meth:`clear_cache`
    between measurements that must start cold.
    """

    def __init__(
        self,
        store: ObjectStore,
        encoder: DeltaEncoder,
        *,
        cache_size: int = 64,
        strategy: str = "dfs",
    ) -> None:
        if strategy not in STRATEGIES:
            known = ", ".join(STRATEGIES)
            raise ValueError(f"unknown batch strategy {strategy!r} (known: {known})")
        self.store = store
        self.encoder = encoder
        self.strategy = strategy
        self.cache = LRUPayloadCache(cache_size)
        # Chain metadata is content-addressed and immutable, so it is
        # memoized for the materializer's lifetime: repeated materialize()
        # calls walking the same chains (the re-packer's access pattern)
        # read each object's metadata from the backend once, not per call.
        self._chain_info: dict[str, _ChainLink] = {}

    def materialize_many(
        self, requests: Sequence[tuple[Hashable, str]] | Sequence[str]
    ) -> BatchResult:
        """Materialize every requested object.

        ``requests`` is either a sequence of object ids or of ``(key,
        object_id)`` pairs; keys name the items in the result (version ids,
        in the repository's case) and default to the object id itself.
        Duplicate object ids are materialized once and shared.
        """
        normalized: list[tuple[Hashable, str]] = [
            request if isinstance(request, tuple) else (request, request)
            for request in requests
        ]

        # Resolve every distinct chain up front.  Only per-object *metadata*
        # (base id + Φ contribution) is retained across batches; the objects
        # themselves are fetched transiently during replay.
        chains: dict[str, tuple[str, ...]] = {}
        for _, object_id in normalized:
            if object_id not in chains:
                chains[object_id] = self._resolve_chain(object_id)

        if self.strategy == "dfs":
            materialized = self._materialize_union_tree(chains)
        else:
            # LRU fallback: order the work so that chains sharing a prefix
            # run back to back — sorting by the chain's id tuple places each
            # prefix immediately before its extensions, which is exactly the
            # order a bounded LRU exploits best.  Peak memory stays bounded
            # by the payload cache no matter how large the batch is.
            schedule = sorted(chains, key=lambda oid: chains[oid])
            materialized = {
                object_id: self._materialize_chain(object_id, chains[object_id])
                for object_id in schedule
            }

        # Distinct keys can resolve to the same object (content addressing
        # deduplicates identical payloads): the single materialization's cost
        # is charged to the first item only, so the aggregate "actually paid"
        # numbers stay honest; later copies are pure cache hits.  A repeated
        # key keeps its first (charged) item rather than being overwritten
        # by a zeroed copy.
        result = BatchResult()
        charged: set[str] = set()
        for key, object_id in normalized:
            if key in result.items:
                continue
            base = materialized[object_id]
            first = object_id not in charged
            charged.add(object_id)
            result.items[key] = BatchItem(
                key=key,
                object_id=object_id,
                payload=base.payload,
                chain_length=base.chain_length,
                predicted_cost=base.predicted_cost,
                recreation_cost=base.recreation_cost if first else 0.0,
                deltas_applied=base.deltas_applied if first else 0,
                cache_hits=base.cache_hits if first else 1,
            )
        return result

    def materialize(self, object_id: str) -> BatchItem:
        """Materialize a single object through the shared batch cache.

        Useful for serving loops (and the re-packer) that interleave single
        reads with batches but still want prefix amortization.  On a
        chain-following remote backend the uncached part of the chain
        arrives in one round trip and is replayed from that response,
        instead of one HTTP exchange per object — and warm repeats (chain
        metadata memoized, payloads cached) perform no exchange at all.
        """
        if getattr(self.store.backend, "follows_chains", False):
            return self._materialize_remote(object_id)
        return self._materialize_chain(object_id, self._resolve_chain(object_id))

    def _materialize_remote(self, object_id: str) -> BatchItem:
        """Segment-batched replay against a chain-following remote backend."""
        chain_ids = self._memoized_chain_ids(object_id)
        if chain_ids is None:
            # First sight of this chain: one multiget resolves *and* carries
            # every object, so the replay below fetches nothing else.
            chain = self.store.delta_chain(object_id)
            self._memoize_chain(chain)
            by_id = {obj.object_id: obj for obj in chain}
            return self._materialize_chain(
                object_id,
                tuple(obj.object_id for obj in chain),
                fetch=by_id.__getitem__,
            )
        # Metadata already memoized: only the suffix below the deepest
        # cached payload needs objects — prefetch it in one round trip
        # (zero round trips when the tip itself is cached).
        start = 0
        for index in range(len(chain_ids) - 1, -1, -1):
            if chain_ids[index] in self.cache:
                start = index
                break
        needed = [oid for oid in chain_ids[start:] if oid not in self.cache]
        prefetched = self.store.get_many(needed) if needed else {}

        def fetch(oid: str) -> Any:
            if oid in prefetched:
                return prefetched[oid]
            return self.store.get(oid)

        return self._materialize_chain(object_id, chain_ids, fetch=fetch)

    def _memoized_chain_ids(self, object_id: str) -> tuple[str, ...] | None:
        """The chain of ``object_id`` if resolvable from the metadata memo."""
        info = self._chain_info
        reversed_chain: list[str] = []
        current_id: str | None = object_id
        while current_id is not None:
            link = info.get(current_id)
            if link is None or len(reversed_chain) > len(info):
                return None
            reversed_chain.append(current_id)
            current_id = link.base_id
        reversed_chain.reverse()
        return tuple(reversed_chain)

    def predicted_chain_cost(self, object_id: str) -> float:
        """Φ chain sum of ``object_id`` from chain metadata alone.

        No payload is replayed: only the per-object metadata memo is
        consulted (and filled on first visit).  This is what prices the
        *expected* recreation cost of a workload before and after a repack.
        """
        chain_ids = self._resolve_chain(object_id)
        return float(
            sum(self._chain_info[oid].phi_contribution for oid in chain_ids)
        )

    def clear_cache(self) -> None:
        """Drop every cached payload and chain memo (start the next batch cold)."""
        self.cache.clear()
        self._chain_info.clear()

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _resolve_chain(self, object_id: str) -> tuple[str, ...]:
        """The root-first id chain of ``object_id``.

        ``_chain_info`` memoizes each visited object's base id and Φ
        contribution, so shared prefixes are walked (and their objects
        read) once no matter how many requests traverse them — and only the
        few-bytes metadata is retained, never the objects themselves.
        """
        info = self._chain_info
        reversed_chain: list[str] = []
        seen: set[str] = set()
        current_id: str | None = object_id
        while current_id is not None:
            link = info.get(current_id)
            if link is None:
                if getattr(self.store.backend, "follows_chains", False):
                    # One round trip resolves the whole remaining segment.
                    self._memoize_chain(self.store.delta_chain(current_id))
                    link = info[current_id]
                else:
                    obj = self.store.get(current_id)
                    link = _ChainLink(
                        base_id=obj.base_id if obj.is_delta else None,
                        phi_contribution=(
                            obj.payload.recreation_cost
                            if obj.is_delta
                            else obj.storage_cost()
                        ),
                    )
                    info[current_id] = link
            reversed_chain.append(current_id)
            if link.base_id is not None:
                if current_id in seen:
                    raise ObjectNotFoundError(
                        f"delta chain of {object_id!r} contains a cycle"
                    )
                seen.add(current_id)
            current_id = link.base_id
        reversed_chain.reverse()
        return tuple(reversed_chain)

    def _memoize_chain(self, chain: Sequence[Any]) -> None:
        """Record chain metadata for every object of a fetched chain."""
        info = self._chain_info
        for obj in chain:
            if obj.object_id not in info:
                info[obj.object_id] = _ChainLink(
                    base_id=obj.base_id if obj.is_delta else None,
                    phi_contribution=(
                        obj.payload.recreation_cost
                        if obj.is_delta
                        else obj.storage_cost()
                    ),
                )

    def _materialize_union_tree(
        self, chains: dict[str, tuple[str, ...]]
    ) -> dict[str, BatchItem]:
        """Materialize every requested chain via one DFS over their union.

        Chains are root-first and every delta object names a unique base, so
        overlaying them yields a forest.  The traversal carries the payload
        of the current root-to-node path on its stack, which is what lets a
        shared prefix be replayed exactly once per batch even when the LRU
        cache is tiny or disabled; the cache is still consulted (warm
        serving across batches) and re-warmed on the way down.

        Per-item accounting charges each node's actually-paid cost to the
        first request (in ``chains`` order) whose chain contains it, so the
        per-item numbers sum to exactly what the batch paid and every item
        stays at or below its Φ prediction.
        """
        # Trim every chain at its deepest cached ancestor (the same probe
        # replay_chain performs), so a warm repeat request replays nothing
        # even when intermediate prefix nodes have been evicted.  The cached
        # payload is captured *now*: puts during the traversal can evict it
        # from the LRU before its subtree is reached, and a trimmed suffix
        # must never find itself without a base.
        captured: dict[str, Any] = {}
        trimmed: dict[str, tuple[str, ...]] = {}
        for object_id, chain_ids in chains.items():
            start = 0
            for index in range(len(chain_ids) - 1, -1, -1):
                cached = self.cache.get(chain_ids[index])
                if not LRUPayloadCache.is_miss(cached):
                    captured.setdefault(chain_ids[index], cached)
                    start = index
                    break
            trimmed[object_id] = chain_ids[start:]

        # A node can enter the tree both as a trim-point root (one chain
        # found it cached) and as an interior node of a longer untrimmed
        # chain; first insertion wins, and since every trim point carries a
        # captured payload the traversal is correct either way.
        children: dict[str | None, list[str]] = {}
        in_tree: set[str] = set()
        for chain_ids in trimmed.values():
            parent: str | None = None
            for oid in chain_ids:
                if oid not in in_tree:
                    in_tree.add(oid)
                    children.setdefault(parent, []).append(oid)
                parent = oid
        for kids in children.values():
            kids.sort()

        requested = set(chains)
        payloads: dict[str, Any] = {}
        node_cost: dict[str, float] = {}
        node_is_delta_replay: dict[str, bool] = {}
        node_cache_hit: dict[str, bool] = {}

        stack: list[tuple[str, Any]] = [
            (root, None) for root in reversed(children.get(None, []))
        ]
        while stack:
            oid, base_payload = stack.pop()
            cached = captured[oid] if oid in captured else self.cache.get(oid)
            if oid in captured or not LRUPayloadCache.is_miss(cached):
                payload = cached
                node_cost[oid] = 0.0
                node_is_delta_replay[oid] = False
                node_cache_hit[oid] = True
            else:
                obj = self.store.get(oid)
                if not obj.is_delta:
                    payload = obj.payload
                    node_cost[oid] = obj.storage_cost()
                    node_is_delta_replay[oid] = False
                else:
                    if base_payload is None:
                        raise ObjectNotFoundError(
                            f"delta object {oid!r} has no materialized base"
                        )
                    payload = self.encoder.apply(base_payload, obj.payload)
                    node_cost[oid] = obj.payload.recreation_cost
                    node_is_delta_replay[oid] = True
                node_cache_hit[oid] = False
                self.cache.put(oid, payload)
            if oid in requested:
                payloads[oid] = payload
            for child in reversed(children.get(oid, [])):
                stack.append((child, payload))

        charged: set[str] = set()
        materialized: dict[str, BatchItem] = {}
        for object_id, chain_ids in chains.items():
            paid = 0.0
            deltas_applied = 0
            suffix = trimmed[object_id]
            # Nodes above the trim point were served by the cached ancestor,
            # never this request; only the traversed suffix can be charged.
            cache_hits = len(chain_ids) - len(suffix)
            for oid in suffix:
                if oid in charged:
                    cache_hits += 1
                    continue
                charged.add(oid)
                if node_cache_hit[oid]:
                    cache_hits += 1
                else:
                    paid += node_cost[oid]
                    if node_is_delta_replay[oid]:
                        deltas_applied += 1
            materialized[object_id] = BatchItem(
                key=object_id,
                object_id=object_id,
                payload=payloads[object_id],
                chain_length=len(chain_ids) - 1,
                predicted_cost=sum(
                    self._chain_info[oid].phi_contribution for oid in chain_ids
                ),
                recreation_cost=paid,
                deltas_applied=deltas_applied,
                cache_hits=cache_hits,
            )
        return materialized

    def _materialize_chain(
        self,
        object_id: str,
        chain_ids: tuple[str, ...],
        fetch: Callable[[str], Any] | None = None,
    ) -> BatchItem:
        predicted = sum(
            self._chain_info[oid].phi_contribution for oid in chain_ids
        )
        payload, paid, deltas_applied, cache_hits = replay_chain(
            chain_ids, fetch if fetch is not None else self.store.get,
            self.cache, self.encoder,
        )
        return BatchItem(
            key=object_id,
            object_id=object_id,
            payload=payload,
            chain_length=len(chain_ids) - 1,
            predicted_cost=predicted,
            recreation_cost=paid,
            deltas_applied=deltas_applied,
            cache_hits=cache_hits,
        )
