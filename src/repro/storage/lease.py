"""Replica-group planner lease: one repack planner per shared store.

A group of ``repro serve --join`` replicas over one ``sqlite://`` catalog
must not all run the adaptive repack controller: duplicate plans would
race ``activate_snapshot`` and waste staging work (exactly one activation
wins per epoch, the rest burn CPU and get pruned).  :class:`PlannerLease`
wraps the catalog's lease table in a runtime object each replica owns:

* a daemon thread calls :meth:`MetadataCatalog.acquire_lease` every
  ``renew_interval`` seconds — each call atomically acquires a free
  lease, renews an owned one, steals an expired one, or is rejected by a
  live peer;
* :attr:`is_holder` gates the controller (only the holder evaluates and
  stages); every other replica adopts finished swaps through the normal
  ``sync()``/change_seq poll;
* :meth:`fence` captures ``(role, token)`` when staging begins.  The
  token increments on every holder *change* and never otherwise, so
  ``activate_snapshot(..., fence=...)`` can reject a zombie planner — one
  paused past its TTL whose lease was stolen — even when no epoch swap
  happened in between (which the ``based_on`` check alone cannot see).

The clock is injectable so tests can drive expiry deterministically
(see :class:`repro.storage.testing.SkewedClock`).
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable

from .catalog import MetadataCatalog

__all__ = ["PlannerLease", "PLANNER_ROLE"]

PLANNER_ROLE = "repack-planner"


class PlannerLease:
    """One replica's handle on the catalog's ``role`` lease.

    Parameters
    ----------
    catalog:
        The shared :class:`MetadataCatalog`; lease transactions run as
        single ``BEGIN IMMEDIATE`` transactions against it.
    holder:
        This replica's id (unique per process, e.g.
        ``replica-<host>-<pid>``).
    role:
        Lease name; replicas coordinate per role.
    ttl:
        Seconds a granted lease stays valid without renewal.  A holder
        paused (GC, SIGSTOP, VM migration) longer than this loses the
        lease to the first peer that retries.
    renew_interval:
        Seconds between renewal attempts; defaults to ``ttl / 3`` so a
        holder gets two retries before peers may steal.
    clock:
        Timestamp source, default :func:`time.time`.  Injected into the
        catalog transaction so skewed test clocks drive the expiry
        comparison itself, not just the thread cadence.
    on_event:
        Optional callback ``(event: dict) -> None`` invoked outside the
        lease lock for every observable transition: ``acquired``,
        ``renewed``, ``stolen`` (this replica stole), ``rejected``, and
        ``lost`` (this replica *was* the holder and a peer took over).
    """

    def __init__(
        self,
        catalog: MetadataCatalog,
        holder: str,
        *,
        role: str = PLANNER_ROLE,
        ttl: float = 10.0,
        renew_interval: float | None = None,
        clock: Callable[[], float] = time.time,
        on_event: Callable[[dict[str, Any]], None] | None = None,
    ) -> None:
        if ttl <= 0:
            raise ValueError("lease ttl must be positive (seconds)")
        if renew_interval is None:
            renew_interval = ttl / 3.0
        if renew_interval <= 0:
            raise ValueError("lease renew interval must be positive (seconds)")
        self.catalog = catalog
        self.holder = holder
        self.role = role
        self.ttl = float(ttl)
        self.renew_interval = float(renew_interval)
        self._clock = clock
        self._on_event = on_event
        self._lock = threading.Lock()
        self._is_holder = False
        self._token = 0
        self._expires_at = 0.0
        self._counts: dict[str, int] = {}
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------ #
    # state machine
    # ------------------------------------------------------------------ #
    def try_acquire(self) -> bool:
        """One acquire/renew/steal attempt; returns holdership after it."""
        result = self.catalog.acquire_lease(
            self.role, self.holder, self.ttl, now=self._clock()
        )
        events: list[dict[str, Any]] = []
        with self._lock:
            was_holder = self._is_holder
            granted = result["holder"] == self.holder
            self._is_holder = granted
            if granted:
                self._token = int(result["token"])
                self._expires_at = float(result["expires_at"])
            event = dict(result)
            if was_holder and not granted:
                # We believed we held the lease but the catalog disagrees:
                # a peer stole it while we were paused.  Anything we staged
                # under the old token is now fenced.
                event["event"] = "lost"
            self._counts[event["event"]] = self._counts.get(event["event"], 0) + 1
            events.append(event)
        if self._on_event is not None:
            for event in events:
                self._on_event(event)
        return granted

    def release(self) -> bool:
        """Voluntarily give the lease up (clean shutdown)."""
        with self._lock:
            was_holder = self._is_holder
            self._is_holder = False
        released = self.catalog.release_lease(self.role, self.holder)
        if released and was_holder:
            with self._lock:
                self._counts["released"] = self._counts.get("released", 0) + 1
            if self._on_event is not None:
                self._on_event(
                    {"event": "released", "role": self.role, "holder": self.holder}
                )
        return released

    # ------------------------------------------------------------------ #
    # renewal thread
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        """Start the renewal thread (idempotent)."""
        if self._thread is not None and self._thread.is_alive():
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name=f"planner-lease-{self.holder}", daemon=True
        )
        self._thread.start()

    def stop(self, *, release: bool = True) -> None:
        """Stop renewing; by default also release so peers take over fast."""
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=max(1.0, self.renew_interval * 2))
            self._thread = None
        if release:
            try:
                self.release()
            except Exception:  # pragma: no cover - shutdown best-effort
                pass

    def _run(self) -> None:
        while not self._stop.is_set():
            try:
                self.try_acquire()
            except Exception:  # pragma: no cover - catalog hiccup; retry
                pass
            self._stop.wait(self.renew_interval)

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #
    @property
    def is_holder(self) -> bool:
        with self._lock:
            return self._is_holder

    @property
    def token(self) -> int:
        with self._lock:
            return self._token

    def fence(self) -> tuple[str, int]:
        """The ``(role, token)`` pair to stage a repack under.

        Captured at staging start and validated inside the activation
        transaction; if the lease changed hands in between, activation
        raises :class:`~repro.exceptions.LeaseFencedError`.
        """
        with self._lock:
            return (self.role, self._token)

    def state(self) -> dict[str, Any]:
        """JSON-ready snapshot of local belief plus the catalog row."""
        row = self.catalog.lease_state(self.role)
        with self._lock:
            return {
                "role": self.role,
                "replica_id": self.holder,
                "is_holder": self._is_holder,
                "token": self._token,
                "ttl": self.ttl,
                "renew_interval": self.renew_interval,
                "expires_at": self._expires_at,
                "holder": row["holder"] if row else None,
                "catalog_token": row["token"] if row else 0,
                "events": dict(self._counts),
            }

    def event_counts(self) -> dict[str, int]:
        with self._lock:
            return dict(self._counts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<PlannerLease role={self.role!r} holder={self.holder!r} "
            f"is_holder={self.is_holder}>"
        )
