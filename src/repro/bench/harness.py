"""Experiment harness: sweeps, result tables and text rendering.

The paper's evaluation is a family of parameter sweeps: run an algorithm at
several storage budgets (or thresholds, or window sizes) and record, for
every resulting storage plan, the total storage cost and the sum/max of the
recreation costs.  This module provides the shared machinery:

* :class:`SweepPoint` / :class:`SweepSeries` — one algorithm's curve in a
  figure;
* :func:`sweep_lmg`, :func:`sweep_mp`, :func:`sweep_last`, :func:`sweep_gith`
  — produce those curves exactly the way the paper parameterizes each
  algorithm;
* :func:`budget_grid` — the relative storage budgets (multiples of the
  MCA/MST cost) shared by the figures;
* :func:`format_table` — plain-text rendering used by the benchmark output
  and the examples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from ..algorithms.gith import git_heuristic_plan
from ..algorithms.last import last_plan
from ..algorithms.lmg import local_move_greedy
from ..algorithms.mp import minimum_feasible_threshold, modified_prim
from ..algorithms.mst import minimum_storage_plan
from ..algorithms.shortest_path import shortest_path_plan
from ..core.instance import ProblemInstance
from ..core.storage_plan import StoragePlan
from ..exceptions import InfeasibleProblemError, SolverError

__all__ = [
    "SweepPoint",
    "SweepSeries",
    "reference_costs",
    "budget_grid",
    "sweep_lmg",
    "sweep_mp",
    "sweep_last",
    "sweep_gith",
    "format_table",
]


@dataclass(frozen=True)
class SweepPoint:
    """One (parameter, plan metrics) sample of a sweep."""

    parameter: float
    storage_cost: float
    sum_recreation: float
    max_recreation: float
    weighted_recreation: float

    def as_row(self) -> list[float]:
        """Row representation used by :func:`format_table`."""
        return [
            self.parameter,
            self.storage_cost,
            self.sum_recreation,
            self.max_recreation,
            self.weighted_recreation,
        ]


@dataclass
class SweepSeries:
    """A named curve: one algorithm swept over a parameter grid."""

    algorithm: str
    points: list[SweepPoint] = field(default_factory=list)

    def add(self, parameter: float, plan: StoragePlan, instance: ProblemInstance) -> None:
        """Evaluate ``plan`` and append a sweep point."""
        metrics = plan.evaluate(instance)
        self.points.append(
            SweepPoint(
                parameter=float(parameter),
                storage_cost=metrics.storage_cost,
                sum_recreation=metrics.sum_recreation,
                max_recreation=metrics.max_recreation,
                weighted_recreation=metrics.weighted_recreation,
            )
        )

    @property
    def storage_costs(self) -> list[float]:
        """Storage cost of every point, in sweep order."""
        return [point.storage_cost for point in self.points]

    @property
    def sum_recreations(self) -> list[float]:
        """Sum-of-recreation cost of every point, in sweep order."""
        return [point.sum_recreation for point in self.points]

    @property
    def max_recreations(self) -> list[float]:
        """Max-recreation cost of every point, in sweep order."""
        return [point.max_recreation for point in self.points]

    def best_sum_recreation_within(self, storage_budget: float) -> float | None:
        """Smallest sum-recreation among points within ``storage_budget``."""
        feasible = [
            point.sum_recreation
            for point in self.points
            if point.storage_cost <= storage_budget * (1 + 1e-9)
        ]
        return min(feasible) if feasible else None


def reference_costs(instance: ProblemInstance) -> dict[str, float]:
    """The MCA/SPT reference lines drawn in every figure of the paper."""
    mca = minimum_storage_plan(instance).evaluate(instance)
    spt = shortest_path_plan(instance).evaluate(instance)
    return {
        "mca_storage": mca.storage_cost,
        "mca_sum_recreation": mca.sum_recreation,
        "mca_max_recreation": mca.max_recreation,
        "spt_storage": spt.storage_cost,
        "spt_sum_recreation": spt.sum_recreation,
        "spt_max_recreation": spt.max_recreation,
    }


def budget_grid(
    instance: ProblemInstance, factors: Sequence[float] = (1.05, 1.1, 1.25, 1.5, 2.0, 3.0, 5.0)
) -> list[float]:
    """Storage budgets as multiples of the minimum (MCA/MST) storage cost."""
    minimum = minimum_storage_plan(instance).storage_cost(instance)
    return [minimum * factor for factor in factors]


def sweep_lmg(
    instance: ProblemInstance,
    budgets: Iterable[float] | None = None,
    *,
    use_workload: bool = True,
) -> SweepSeries:
    """LMG swept over storage budgets (its natural parameter)."""
    series = SweepSeries(algorithm="LMG")
    for budget in budgets if budgets is not None else budget_grid(instance):
        plan = local_move_greedy(instance, budget, use_workload=use_workload)
        series.add(budget, plan, instance)
    return series


def sweep_mp(
    instance: ProblemInstance,
    thresholds: Iterable[float] | None = None,
) -> SweepSeries:
    """MP swept over max-recreation thresholds (its natural parameter)."""
    series = SweepSeries(algorithm="MP")
    if thresholds is None:
        minimum = minimum_feasible_threshold(instance)
        thresholds = [minimum * factor for factor in (1.0, 1.5, 2.0, 3.0, 5.0, 10.0)]
    for threshold in thresholds:
        plan = modified_prim(instance, threshold, strict=False)
        series.add(threshold, plan, instance)
    return series


def sweep_last(
    instance: ProblemInstance, alphas: Iterable[float] = (1.2, 1.5, 2.0, 3.0, 5.0)
) -> SweepSeries:
    """LAST swept over its balance parameter α."""
    series = SweepSeries(algorithm="LAST")
    for alpha in alphas:
        plan = last_plan(instance, alpha)
        series.add(alpha, plan, instance)
    return series


def sweep_gith(
    instance: ProblemInstance,
    windows: Iterable[int] = (5, 10, 25, 50),
    max_depth: int = 50,
) -> SweepSeries:
    """GitH swept over window sizes (the knob the paper varies for BF)."""
    series = SweepSeries(algorithm="GitH")
    for window in windows:
        plan = git_heuristic_plan(instance, window=window, max_depth=max_depth)
        series.add(float(window), plan, instance)
    return series


def run_safe(
    label: str, builder: Callable[[], StoragePlan], instance: ProblemInstance
) -> tuple[str, StoragePlan | None]:
    """Run a plan builder, swallowing infeasibility into a ``None`` result."""
    try:
        return label, builder()
    except (InfeasibleProblemError, SolverError):
        return label, None


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], *, precision: int = 3
) -> str:
    """Render a plain-text table (used by benches and examples).

    Floats are shown with ``precision`` significant digits in engineering
    style; everything else is converted with ``str``.
    """
    def render(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.{precision}g}"
        return str(value)

    rendered = [[render(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(header.ljust(widths[index]) for index, header in enumerate(headers)),
        "  ".join("-" * widths[index] for index in range(len(headers))),
    ]
    for row in rendered:
        lines.append("  ".join(cell.ljust(widths[index]) for index, cell in enumerate(row)))
    return "\n".join(lines)
