"""Bench regression gate: fresh ``BENCH_*.json`` vs committed baselines.

CI has emitted benchmark trajectory files since ROADMAP item 5 landed,
but nothing ever *read* them — a perf regression sailed through review
as an artifact nobody opened.  This module closes that loop: the
``bench-artifacts`` job runs

.. code-block:: console

    python -m repro.bench.regression \
        --baseline bench/baselines/BENCH_serve.json --fresh BENCH_serve.json

and fails the build when a key metric's median regresses by more than
the threshold (default 20%).

The gated metrics are deliberately the *deterministic work counters*
(delta applications, hit rates, relative model error) rather than wall
seconds: CI runners vary wildly in speed, and a latency gate on shared
hardware flakes.  The work counters are seeded and machine-independent —
when one moves, the code changed behaviour, not the hardware.
"""

from __future__ import annotations

import json
import statistics
from typing import Any, Mapping, Sequence

__all__ = [
    "KEY_METRICS",
    "DEFAULT_THRESHOLD",
    "median_of",
    "compare_documents",
    "main",
]

#: Per-benchmark gated metrics: ``(group, field, direction)`` where
#: direction is ``"lower"`` (less is better) or ``"higher"``.  A group or
#: field absent from the *baseline* is skipped — new benchmarks gate from
#: the first PR that commits a baseline containing them — but one absent
#: from the *fresh* run fails: a benchmark silently dropping out of the
#: artifact is itself a regression.
KEY_METRICS: dict[str, list[tuple[str, str, str]]] = {
    "serve": [
        ("serve_warm_vs_cold", "warm_deltas", "lower"),
        ("serve_warm_vs_cold", "cold_deltas", "lower"),
        ("warm_pricing", "cost_rel_error", "lower"),
        ("warm_pricing", "delta_rel_error", "lower"),
        ("tiered_cache", "tiered_warm_deltas", "lower"),
        ("tiered_cache", "tiered_hit_rate", "higher"),
        # Wall seconds are never gated; the deterministic work counters of
        # the worker-model benchmark are (the >=2x speedup bar itself is
        # asserted inside cpu_bound_serving_benchmark).
        ("cpu_bound_serving", "deltas_applied", "lower"),
        ("cpu_bound_serving", "payload_mismatches", "lower"),
    ],
    "batch": [
        ("batch_vs_sequential", "batch_deltas", "lower"),
        ("batch_vs_sequential", "delta_savings", "higher"),
        ("batch_vs_sequential", "payload_mismatches", "lower"),
    ],
}

DEFAULT_THRESHOLD = 0.20
#: Absolute slack so a 0-vs-tiny float jitter never trips the gate.
_EPSILON = 1e-9


def median_of(rows: Sequence[Mapping[str, Any]], field: str) -> float | None:
    """Median of ``field`` across the rows that carry it numerically."""
    values = [
        float(row[field])
        for row in rows
        if isinstance(row.get(field), (int, float)) and not isinstance(row.get(field), bool)
    ]
    if not values:
        return None
    return float(statistics.median(values))


def compare_documents(
    baseline: Mapping[str, Any],
    fresh: Mapping[str, Any],
    *,
    threshold: float = DEFAULT_THRESHOLD,
) -> list[dict[str, Any]]:
    """Regressions of *fresh* against *baseline*; empty list means pass.

    Both arguments are ``BENCH_*.json`` documents (see
    :mod:`repro.bench.results`).  Each returned entry names the group,
    field, both medians and the allowed bound that was exceeded.
    """
    benchmark = str(baseline.get("benchmark", ""))
    specs = KEY_METRICS.get(benchmark)
    if specs is None:
        raise ValueError(
            f"no gated metrics for benchmark {benchmark!r} "
            f"(known: {sorted(KEY_METRICS)})"
        )
    if fresh.get("benchmark") != benchmark:
        raise ValueError(
            f"benchmark mismatch: baseline {benchmark!r} "
            f"vs fresh {fresh.get('benchmark')!r}"
        )
    base_metrics = baseline.get("metrics") or {}
    fresh_metrics = fresh.get("metrics") or {}
    regressions: list[dict[str, Any]] = []
    for group, field, direction in specs:
        base_median = median_of(base_metrics.get(group) or [], field)
        if base_median is None:
            continue  # not in the committed baseline yet
        fresh_median = median_of(fresh_metrics.get(group) or [], field)
        if fresh_median is None:
            regressions.append(
                {
                    "group": group,
                    "field": field,
                    "baseline": base_median,
                    "fresh": None,
                    "allowed": base_median,
                    "detail": "metric missing from the fresh run",
                }
            )
            continue
        if direction == "lower":
            allowed = base_median * (1.0 + threshold) + _EPSILON
            regressed = fresh_median > allowed
        else:
            allowed = base_median * (1.0 - threshold) - _EPSILON
            regressed = fresh_median < allowed
        if regressed:
            regressions.append(
                {
                    "group": group,
                    "field": field,
                    "baseline": base_median,
                    "fresh": fresh_median,
                    "allowed": allowed,
                    "detail": f"{direction} is better",
                }
            )
    return regressions


def _load(path: str) -> dict[str, Any]:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def main(argv: Sequence[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="fail when fresh BENCH_*.json medians regress vs a baseline"
    )
    parser.add_argument("--baseline", required=True, help="committed BENCH_*.json")
    parser.add_argument("--fresh", required=True, help="freshly produced BENCH_*.json")
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="fractional regression allowed per metric (default 0.20)",
    )
    args = parser.parse_args(argv)

    baseline = _load(args.baseline)
    fresh = _load(args.fresh)
    regressions = compare_documents(baseline, fresh, threshold=args.threshold)
    benchmark = baseline.get("benchmark")
    if not regressions:
        print(f"bench regression gate: {benchmark} OK ({args.fresh} vs {args.baseline})")
        return 0
    print(f"bench regression gate: {benchmark} FAILED ({len(regressions)} regressions)")
    for entry in regressions:
        fresh_repr = "missing" if entry["fresh"] is None else f"{entry['fresh']:.4g}"
        print(
            f"  {entry['group']}.{entry['field']}: median {fresh_repr} "
            f"vs baseline {entry['baseline']:.4g} "
            f"(allowed {entry['allowed']:.4g}; {entry['detail']})"
        )
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
