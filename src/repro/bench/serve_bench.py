"""Benchmark drivers for the serving layer.

Three experiments:

* :func:`warm_pricing_benchmark` — the warm cost model's accuracy: for a
  Zipf request stream, each request's
  :meth:`~repro.storage.batch.BatchMaterializer.warm_chain_cost` is
  predicted immediately before serving it and the totals are compared to
  the deltas/cost the service actually paid (and to the cold Φ pricing,
  which overstates warm serving by orders of magnitude).

* :func:`serve_warm_vs_cold` — ``repro serve`` keeps one
  :class:`~repro.storage.batch.BatchMaterializer` cache alive across
  requests, so a popular version's delta chain is replayed once and then
  answered from memory.  A Zipf-skewed stream of checkout requests
  (real-world access frequencies follow such distributions, per the
  paper's workload-aware evaluation) is served twice through one
  :class:`~repro.server.service.VersionStoreService` — first against a
  cold cache, then replayed against the now-warm cache — and the
  per-request latency and delta applications of the two passes are
  compared.
* :func:`concurrent_serving_benchmark` — the per-chain concurrency
  experiment: N client threads hammer N *independent* delta chains through
  one service, once with the old single-lock configuration
  (``lock_stripes=1, max_workers=1``) and once with striped per-chain
  locks and a worker pool.  The store sits behind
  :class:`SimulatedLatencyBackend`, which charges a fixed per-fetch
  latency — modelling the disk/remote stores where recreation time is
  I/O-bound, which is where lock striping pays (pure in-memory CPU replay
  is GIL-serialized in CPython either way; both raw configurations are
  reported).  Byte parity against direct repository checkouts is verified
  for every served payload.

* :func:`cpu_bound_serving_benchmark` — the worker-model experiment: the
  same concurrent request schedule served once with ``worker_model=
  "thread"`` and once with ``worker_model="process"`` over a repository
  whose encoder charges simulated CPU time under a module-wide lock
  (:class:`~repro.delta.simulated.SimulatedCpuEncoder` — a deterministic,
  machine-independent stand-in for GIL-bound decode work).  Threads in
  one interpreter serialize on that lock exactly as real CPU-bound decode
  serializes on the GIL; spawn-pool workers each hold their own copy and
  overlap, so the measured speedup is the GIL escape itself.

Both drivers run in-process (no HTTP) so the numbers isolate the
materialization layer rather than socket overhead.
"""

from __future__ import annotations

import tempfile
import threading
import time
from typing import Any, Iterator, Mapping, Sequence

from ..core.version_graph import VersionGraph
from ..datagen.workload import sample_accesses, zipfian_workload
from ..delta import SimulatedCpuEncoder
from ..server.service import VersionStoreService
from ..storage.backends import MemoryBackend, StorageBackend
from ..storage.repository import Repository
from .batch_bench import batch_benchmark_scenarios, build_repository_from_graph

__all__ = [
    "zipf_request_stream",
    "serve_warm_vs_cold",
    "warm_pricing_benchmark",
    "tiered_cache_benchmark",
    "SimulatedLatencyBackend",
    "build_independent_chains",
    "concurrent_serving_benchmark",
    "cpu_bound_serving_benchmark",
]


def zipf_request_stream(
    version_ids: Sequence,
    num_requests: int,
    *,
    exponent: float = 2.0,
    seed: int = 0,
) -> list:
    """A concrete checkout-request trace with Zipf-distributed popularity."""
    workload = zipfian_workload(version_ids, exponent=exponent, seed=seed)
    return sample_accesses(workload, num_requests, seed=seed + 1)


def _serve_pass(
    service: VersionStoreService, stream: Sequence
) -> tuple[float, float, int]:
    """Serve every request; returns (total_s, max_request_s, deltas_applied)."""
    deltas_before = service.stats_counters.deltas_applied
    slowest = 0.0
    started = time.perf_counter()
    for version_id in stream:
        request_started = time.perf_counter()
        service.checkout(version_id)
        slowest = max(slowest, time.perf_counter() - request_started)
    total = time.perf_counter() - started
    return total, slowest, service.stats_counters.deltas_applied - deltas_before


def serve_warm_vs_cold(
    graphs: Mapping[str, VersionGraph] | None = None,
    *,
    num_requests: int = 300,
    exponent: float = 2.0,
    cache_size: int = 256,
    strategy: str = "dfs",
    seed: int = 0,
) -> list[dict[str, float | str]]:
    """Serve one Zipf stream cold, then replay it warm, per scenario.

    Returns one row per scenario: delta applications and latency of the
    cold pass (cache starts empty, warming as it goes) and of the warm
    replay, plus the naive count a cache-less sequential server would have
    paid for the whole double stream.  Payloads of the warm pass are
    byte-identical to direct repository checkouts by construction (the
    service returns the cached payload object itself); correctness is
    asserted separately by the test suite, latency is measured here.
    """
    if graphs is None:
        graphs = batch_benchmark_scenarios(seed=seed)

    rows: list[dict[str, float | str]] = []
    for name, graph in graphs.items():
        repo = build_repository_from_graph(graph, seed=seed)
        service = VersionStoreService(repo, cache_size=cache_size, strategy=strategy)
        stream = zipf_request_stream(
            repo.graph.version_ids, num_requests, exponent=exponent, seed=seed
        )

        service.materializer.clear_cache()
        cold_seconds, cold_slowest, cold_deltas = _serve_pass(service, stream)
        warm_seconds, warm_slowest, warm_deltas = _serve_pass(service, stream)

        naive = service.stats_counters.naive_delta_applications
        rows.append(
            {
                "scenario": name,
                "num_versions": float(len(repo)),
                "num_requests": float(num_requests),
                "cold_deltas": float(cold_deltas),
                "warm_deltas": float(warm_deltas),
                "naive_deltas": float(naive),
                "cold_seconds": cold_seconds,
                "warm_seconds": warm_seconds,
                "cold_slowest_ms": 1000 * cold_slowest,
                "warm_slowest_ms": 1000 * warm_slowest,
                "mean_cold_ms": 1000 * cold_seconds / num_requests,
                "mean_warm_ms": 1000 * warm_seconds / num_requests,
            }
        )
    return rows


# --------------------------------------------------------------------- #
# warm-vs-cold pricing: the warm cost model against measured serving work
# --------------------------------------------------------------------- #
def warm_pricing_benchmark(
    graphs: Mapping[str, VersionGraph] | None = None,
    *,
    num_requests: int = 300,
    exponent: float = 2.0,
    cache_size: int = 16,
    seed: int = 0,
) -> list[dict[str, float | str]]:
    """How well the warm cost model predicts what serving actually pays.

    For every request of a Zipf stream the model's
    :meth:`~repro.storage.batch.BatchMaterializer.warm_chain_cost` is
    snapshot *immediately before* the request is served (the cache mutates
    with every request, so each prediction is judged against exactly the
    state it priced), then the served response's ``deltas_applied`` and
    ``recreation_cost`` are accumulated next to the predictions.  The cache
    is deliberately small relative to the version count so the stream
    keeps mixing warm and cold chains — the regime where cold pricing is
    furthest off.  Returns one row per scenario with predicted vs measured
    totals and their relative error (the acceptance bar: within 15%), plus
    the cold model's prediction for the same stream as the baseline the
    warm model improves on.
    """
    if graphs is None:
        graphs = batch_benchmark_scenarios(seed=seed)

    rows: list[dict[str, float | str]] = []
    for name, graph in graphs.items():
        repo = build_repository_from_graph(graph, seed=seed)
        service = VersionStoreService(repo, cache_size=cache_size)
        stream = zipf_request_stream(
            repo.graph.version_ids, num_requests, exponent=exponent, seed=seed
        )

        predicted_deltas = 0
        predicted_cost = 0.0
        cold_deltas = 0
        measured_deltas = 0
        measured_cost = 0.0
        for version_id in stream:
            object_id = repo.object_id_of(version_id)
            warm = service.materializer.warm_chain_cost(object_id)
            predicted_deltas += warm.deltas
            predicted_cost += warm.phi
            cold_deltas += repo.store.chain_stats(object_id).num_deltas
            response = service.checkout(version_id)
            measured_deltas += response.deltas_applied
            measured_cost += response.recreation_cost
        service.close()

        delta_error = (
            abs(predicted_deltas - measured_deltas) / measured_deltas
            if measured_deltas
            else 0.0
        )
        cost_error = (
            abs(predicted_cost - measured_cost) / measured_cost
            if measured_cost
            else 0.0
        )
        rows.append(
            {
                "scenario": name,
                "num_versions": float(len(repo)),
                "num_requests": float(num_requests),
                "predicted_deltas": float(predicted_deltas),
                "measured_deltas": float(measured_deltas),
                "cold_predicted_deltas": float(cold_deltas),
                "predicted_cost": predicted_cost,
                "measured_cost": measured_cost,
                "delta_rel_error": delta_error,
                "cost_rel_error": cost_error,
            }
        )
    return rows


# --------------------------------------------------------------------- #
# two-tier cache: memory LRU over a compressed disk spill tier
# --------------------------------------------------------------------- #
def tiered_cache_benchmark(
    graphs: Mapping[str, VersionGraph] | None = None,
    *,
    num_requests: int = 300,
    exponent: float = 1.2,
    cache_size: int = 8,
    tier_bytes: int = 64 * 1024 * 1024,
    seed: int = 0,
) -> list[dict[str, float | str]]:
    """Warm serving with the memory-only cache vs the two-tier cache.

    The stream is Zipf-skewed but flat enough (low exponent) that its
    working set dwarfs the deliberately tiny memory tier — the regime the
    disk tier exists for.  Each scenario serves the identical stream twice
    per configuration (cold pass to warm the caches, then the measured
    warm replay) and compares the warm replay's delta applications and
    cache hit rate.  The improvement is *asserted*, not just reported:
    with a spill tier large enough to retain what the memory tier evicts,
    the warm replay must hit more and replay fewer deltas than the
    memory-only configuration ever can.
    """
    import shutil
    import tempfile

    if graphs is None:
        graphs = batch_benchmark_scenarios(seed=seed)

    rows: list[dict[str, float | str]] = []
    for name, graph in graphs.items():
        repo = build_repository_from_graph(graph, seed=seed)
        stream = zipf_request_stream(
            repo.graph.version_ids, num_requests, exponent=exponent, seed=seed
        )

        def warm_replay(service: VersionStoreService) -> tuple[int, float]:
            _serve_pass(service, stream)  # cold pass warms the tiers
            cache = service.materializer.cache
            disk = getattr(cache, "disk", None)
            hits_before, misses_before = cache.hits, cache.misses
            disk_hits_before = disk.hits if disk is not None else 0
            _, _, deltas = _serve_pass(service, stream)
            # Every lookup probes the memory tier first, so its probe count
            # is the request-side denominator; a disk hit is a warm answer
            # the memory tier alone would have missed.
            probes = (cache.hits - hits_before) + (cache.misses - misses_before)
            warm_hits = cache.hits - hits_before
            if disk is not None:
                warm_hits += disk.hits - disk_hits_before
            hit_rate = warm_hits / probes if probes else 0.0
            return deltas, hit_rate

        single = VersionStoreService(repo, cache_size=cache_size)
        single_deltas, single_hit_rate = warm_replay(single)
        single.close()

        tier_dir = tempfile.mkdtemp(prefix="repro-bench-tier-")
        try:
            tiered = VersionStoreService(
                repo,
                cache_size=cache_size,
                cache_tier_dir=tier_dir,
                cache_tier_bytes=tier_bytes,
            )
            tiered_deltas, tiered_hit_rate = warm_replay(tiered)
            disk = tiered.materializer.cache.disk
            disk_hits, spills = disk.hits, disk.spills
            tiered.close()
        finally:
            shutil.rmtree(tier_dir, ignore_errors=True)

        if tiered_hit_rate <= single_hit_rate or tiered_deltas >= single_deltas:
            raise AssertionError(
                f"{name}: two-tier cache did not improve warm serving "
                f"(hit rate {single_hit_rate:.3f} -> {tiered_hit_rate:.3f}, "
                f"deltas {single_deltas} -> {tiered_deltas})"
            )
        rows.append(
            {
                "scenario": name,
                "num_versions": float(len(repo)),
                "num_requests": float(num_requests),
                "memory_entries": float(cache_size),
                "single_warm_deltas": float(single_deltas),
                "tiered_warm_deltas": float(tiered_deltas),
                "single_hit_rate": single_hit_rate,
                "tiered_hit_rate": tiered_hit_rate,
                "disk_hits": float(disk_hits),
                "disk_spills": float(spills),
            }
        )
    return rows


# --------------------------------------------------------------------- #
# per-chain concurrency benchmark
# --------------------------------------------------------------------- #
class SimulatedLatencyBackend(StorageBackend):
    """A backend wrapper charging a fixed latency per object fetch.

    Models the stores where recreation is I/O-bound — objects on disk, a
    zip archive, or a remote peer one round trip away — without the noise
    of real devices: every ``get`` sleeps ``delay`` seconds before
    delegating, and ``get_many`` sleeps once for the whole batch (a batched
    round trip).  Sleeps release the GIL exactly like real I/O does, so
    the benchmark measures what lock striping actually buys on such
    stores.
    """

    scheme = "latency"

    def __init__(self, child: StorageBackend, delay: float) -> None:
        self.child = child
        self.delay = float(delay)
        self.fetches = 0
        self._count_lock = threading.Lock()

    def put(self, key: str, value: Any) -> None:
        self.child.put(key, value)

    def get(self, key: str) -> Any:
        with self._count_lock:
            self.fetches += 1
        time.sleep(self.delay)
        return self.child.get(key)

    def get_many(self, keys: Sequence[str]) -> dict[str, Any]:
        with self._count_lock:
            self.fetches += 1
        time.sleep(self.delay)
        return self.child.get_many(keys)

    def delete(self, key: str) -> None:
        self.child.delete(key)

    def keys(self) -> Iterator[str]:
        return self.child.keys()

    def __contains__(self, key: str) -> bool:
        return key in self.child

    def __len__(self) -> int:
        return len(self.child)

    def spec(self) -> str:
        return f"{self.scheme}+{self.child.spec()}"


def build_independent_chains(
    *,
    num_chains: int = 4,
    chain_length: int = 12,
    num_rows: int = 60,
    seed: int = 0,
    backend: StorageBackend | str | None = None,
    encoder=None,
) -> tuple[Repository, dict[int, list]]:
    """A repository holding ``num_chains`` independent delta chains.

    Each chain's first version carries entirely different content, so the
    parent delta is larger than the payload and the version is stored
    *full* — starting a fresh object chain whose root strides a different
    lock stripe.  Subsequent versions append/edit a little and are stored
    as deltas on that chain.  Returns the repository plus the version ids
    of every chain.
    """
    repo = Repository(cache_size=0, backend=backend, encoder=encoder)
    chains: dict[int, list] = {}
    for chain in range(num_chains):
        payload = [
            f"chain-{chain},row-{row},{(seed + chain * 31 + row) % 97}"
            for row in range(num_rows)
        ]
        vids = [repo.commit(payload, message=f"chain {chain} base")]
        for step in range(1, chain_length):
            payload = list(payload)
            payload[(step * 7) % len(payload)] = f"chain-{chain},edited,{step}"
            payload.append(f"chain-{chain},appended,{step}")
            vids.append(
                repo.commit(payload, parents=[vids[-1]], message=f"c{chain} s{step}")
            )
        chains[chain] = vids
    return repo, chains


def concurrent_serving_benchmark(
    *,
    num_chains: int = 4,
    chain_length: int = 12,
    requests_per_chain: int = 6,
    workers: int = 4,
    storage_latency: float = 0.002,
    seed: int = 0,
) -> list[dict[str, float | str | bool]]:
    """Concurrent checkout throughput: single lock vs per-chain striping.

    ``num_chains`` client threads each hammer the tip region of their own
    independent chain (``requests_per_chain`` cold checkouts, cache
    disabled so every request replays its whole chain through the
    latency-charged store).  Two service configurations serve the identical
    request schedule over byte-identical repositories:

    * ``single-lock`` — ``lock_stripes=1, max_workers=1``: the pre-refactor
      server, every materialization serialized;
    * ``striped`` — per-chain striped locks plus a ``workers``-wide pool.

    Returns one row per configuration (wall seconds, requests/s, fetches,
    byte parity against direct repository checkouts) plus a ``speedup``
    summary row.
    """
    configs = [
        ("single-lock", 1, 1),
        (f"striped-{workers}w", 64, workers),
    ]
    rows: list[dict[str, float | str | bool]] = []
    for label, stripes, max_workers in configs:
        backend = SimulatedLatencyBackend(MemoryBackend(), storage_latency)
        repo, chains = build_independent_chains(
            num_chains=num_chains,
            chain_length=chain_length,
            seed=seed,
            backend=backend,
        )
        expected = {
            vid: repo.checkout(vid, record_stats=False).payload
            for vids in chains.values()
            for vid in vids
        }
        service = VersionStoreService(
            repo,
            cache_size=0,  # every request replays: isolates lock concurrency
            max_workers=max_workers,
            lock_stripes=stripes,
        )
        # Warm the cost index (chain roots) outside the measured window so
        # both configurations start from the same state.
        for vids in chains.values():
            repo.store.chain_root(repo.object_id_of(vids[-1]))

        mismatches: list = []
        errors: list = []
        barrier = threading.Barrier(num_chains + 1)
        # Setup (parity payloads, index warm-up) went through the same
        # backend; count only the measured serving phase's fetches.
        fetches_before = backend.fetches

        def client(chain: int) -> None:
            vids = chains[chain]
            barrier.wait()
            try:
                for request in range(requests_per_chain):
                    vid = vids[-1 - (request % 3)]
                    response = service.checkout(vid)
                    if response.payload != expected[vid]:
                        mismatches.append((chain, vid))
            except BaseException as error:  # pragma: no cover - diagnostic
                errors.append(error)

        threads = [
            threading.Thread(target=client, args=(chain,)) for chain in chains
        ]
        for thread in threads:
            thread.start()
        barrier.wait()
        started = time.perf_counter()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started
        service.close()

        num_requests = num_chains * requests_per_chain
        rows.append(
            {
                "config": label,
                "num_chains": float(num_chains),
                "num_requests": float(num_requests),
                "seconds": elapsed,
                "requests_per_s": num_requests / elapsed if elapsed > 0 else 0.0,
                "storage_fetches": float(backend.fetches - fetches_before),
                "byte_identical": not mismatches and not errors,
                # Surfaced verbatim so an acceptance failure names the
                # actual defect instead of just a parity/speedup miss.
                "errors": "; ".join(repr(error) for error in errors),
            }
        )
    baseline, striped = rows[0], rows[1]
    rows.append(
        {
            "config": "speedup",
            "num_chains": float(num_chains),
            "num_requests": baseline["num_requests"],
            "seconds": 0.0,
            "requests_per_s": 0.0,
            "storage_fetches": 0.0,
            "byte_identical": bool(
                baseline["byte_identical"] and striped["byte_identical"]
            ),
            "errors": "",
            "speedup": float(baseline["seconds"]) / max(1e-9, float(striped["seconds"])),
        }
    )
    return rows


def cpu_bound_serving_benchmark(
    *,
    num_chains: int = 4,
    chain_length: int = 6,
    requests_per_chain: int = 2,
    workers: int = 4,
    apply_seconds: float = 0.01,
    seed: int = 0,
) -> list[dict[str, float | str | bool]]:
    """Concurrent CPU-bound checkout throughput: thread vs process workers.

    ``num_chains`` client threads each re-checkout the tip of their own
    independent chain (cache disabled, so every request replays the whole
    chain) against a repository encoded with
    :class:`~repro.delta.simulated.SimulatedCpuEncoder`: every delta apply
    sleeps ``apply_seconds`` while holding a module-wide lock, modelling
    GIL-bound decode CPU deterministically on any machine.  The identical
    schedule runs through two services at the same ``workers`` width:

    * ``thread-Nw`` — the in-process pool; all applies serialize on the
      simulated GIL no matter how many threads serve;
    * ``process-Nw`` — replay shipped to spawn-pool workers, each with its
      own interpreter (and own simulated GIL), so chains decode in
      parallel.

    Process-pool spawn and per-tip warmup happen outside the measured
    window.  Raises :class:`AssertionError` if any served payload differs
    from a direct checkout or if the process model fails to reach 2x the
    thread model's throughput — the acceptance bar for the GIL escape.
    """
    rows: list[dict[str, float | str | bool]] = []
    for model in ("thread", "process"):
        with tempfile.TemporaryDirectory(prefix=f"repro-cpu-bench-{model}-") as root:
            repo, chains = build_independent_chains(
                num_chains=num_chains,
                chain_length=chain_length,
                seed=seed,
                backend=f"file://{root}/objects",
                encoder=SimulatedCpuEncoder(apply_seconds=apply_seconds),
            )
            tips = {chain: vids[-1] for chain, vids in chains.items()}
            expected = {
                vid: repo.checkout(vid, record_stats=False).payload
                for vid in tips.values()
            }
            service = VersionStoreService(
                repo,
                cache_size=0,  # every request replays: isolates decode cost
                max_workers=workers,
                worker_model=model,
            )
            assert service.worker_model == model, (
                f"worker model {model!r} unavailable: "
                f"{service.materializer.worker_model_fallback}"
            )
            mismatches: list = []
            errors: list = []
            deltas = [0]
            count_lock = threading.Lock()

            def run_schedule(requests: int) -> float:
                barrier = threading.Barrier(num_chains + 1)

                def client(chain: int) -> None:
                    vid = tips[chain]
                    barrier.wait()
                    try:
                        for _ in range(requests):
                            response = service.checkout(vid)
                            if response.payload != expected[vid]:
                                mismatches.append((chain, vid))
                            with count_lock:
                                deltas[0] += max(0, response.chain_length - 1)
                    except BaseException as error:  # pragma: no cover
                        errors.append(error)

                threads = [
                    threading.Thread(target=client, args=(chain,))
                    for chain in chains
                ]
                for thread in threads:
                    thread.start()
                barrier.wait()
                started = time.perf_counter()
                for thread in threads:
                    thread.join()
                return time.perf_counter() - started

            # Warm up with the *concurrent* schedule, outside the measured
            # window: the spawn pool creates workers lazily on concurrent
            # demand, so a warm pass is what gets all ``workers`` processes
            # spawned and their per-process stores opened.  The measured
            # pass then compares steady-state decode throughput.
            run_schedule(1)
            deltas[0] = 0
            elapsed = run_schedule(requests_per_chain)
            service.close()

        num_requests = num_chains * requests_per_chain
        rows.append(
            {
                "config": f"{model}-{workers}w",
                "workers": float(workers),
                "num_requests": float(num_requests),
                "seconds": elapsed,
                "requests_per_s": num_requests / elapsed if elapsed > 0 else 0.0,
                "deltas_applied": float(deltas[0]),
                "payload_mismatches": float(len(mismatches)),
                "byte_identical": not mismatches and not errors,
                "errors": "; ".join(repr(error) for error in errors),
            }
        )
    threaded, processed = rows[0], rows[1]
    speedup = float(threaded["seconds"]) / max(1e-9, float(processed["seconds"]))
    rows.append(
        {
            "config": "speedup",
            "workers": float(workers),
            "num_requests": threaded["num_requests"],
            "seconds": 0.0,
            "requests_per_s": 0.0,
            "deltas_applied": 0.0,
            "payload_mismatches": float(
                threaded["payload_mismatches"] + processed["payload_mismatches"]
            ),
            "byte_identical": bool(
                threaded["byte_identical"] and processed["byte_identical"]
            ),
            "errors": "",
            "speedup": speedup,
        }
    )
    assert threaded["byte_identical"] and processed["byte_identical"], rows
    assert speedup >= 2.0, (
        f"process workers reached only {speedup:.2f}x the thread model "
        f"(acceptance bar is 2x): {rows}"
    )
    return rows


# --------------------------------------------------------------------- #
# CLI entry point: the fast benches -> BENCH_serve.json (CI artifact)
# --------------------------------------------------------------------- #
def main(argv: Sequence[str] | None = None) -> int:
    """Run the fast serving benchmarks and emit a ``BENCH_serve.json``.

    ``python -m repro.bench.serve_bench --output BENCH_serve.json`` — the
    CI benchmark step runs exactly this and uploads the file, so the
    serving numbers accumulate a trajectory across PRs.
    """
    import argparse

    from .results import write_bench_json

    parser = argparse.ArgumentParser(
        description="serving benchmarks -> BENCH_serve.json"
    )
    parser.add_argument("--output", default="BENCH_serve.json")
    parser.add_argument(
        "--timestamp",
        default=None,
        help="stamp recorded in the document (CI passes the commit SHA)",
    )
    parser.add_argument("--requests", type=int, default=120)
    parser.add_argument("--cache-size", type=int, default=64)
    parser.add_argument("--scale", type=float, default=0.5)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    graphs = batch_benchmark_scenarios(scale=args.scale, seed=args.seed)
    params = {
        "num_requests": args.requests,
        "cache_size": args.cache_size,
        "scale": args.scale,
        "seed": args.seed,
    }
    metrics = {
        "serve_warm_vs_cold": serve_warm_vs_cold(
            graphs,
            num_requests=args.requests,
            cache_size=args.cache_size,
            seed=args.seed,
        ),
        "warm_pricing": warm_pricing_benchmark(
            graphs, num_requests=args.requests, seed=args.seed
        ),
        "tiered_cache": tiered_cache_benchmark(
            graphs, num_requests=args.requests, seed=args.seed
        ),
        "concurrent_serving": concurrent_serving_benchmark(seed=args.seed),
        "cpu_bound_serving": cpu_bound_serving_benchmark(seed=args.seed),
    }
    write_bench_json(args.output, "serve", params, metrics, args.timestamp)
    print(f"wrote {args.output} ({len(metrics)} benchmark groups)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
