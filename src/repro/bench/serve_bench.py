"""Benchmark driver: warm vs cold serving under a Zipf-skewed request stream.

``repro serve`` keeps one :class:`~repro.storage.batch.BatchMaterializer`
cache alive across requests, so a popular version's delta chain is replayed
once and then answered from memory.  This driver quantifies that effect on
the LC/DC/BF scenario repositories: a Zipf-skewed stream of checkout
requests (real-world access frequencies follow such distributions, per the
paper's workload-aware evaluation) is served twice through one
:class:`~repro.server.service.VersionStoreService` — first against a cold
cache, then replayed against the now-warm cache — and the per-request
latency and delta applications of the two passes are compared.

The service is driven in-process (no HTTP) so the numbers isolate the
materialization layer rather than socket overhead.
"""

from __future__ import annotations

import time
from typing import Mapping, Sequence

from ..core.version_graph import VersionGraph
from ..datagen.workload import sample_accesses, zipfian_workload
from ..server.service import VersionStoreService
from .batch_bench import batch_benchmark_scenarios, build_repository_from_graph

__all__ = ["zipf_request_stream", "serve_warm_vs_cold"]


def zipf_request_stream(
    version_ids: Sequence,
    num_requests: int,
    *,
    exponent: float = 2.0,
    seed: int = 0,
) -> list:
    """A concrete checkout-request trace with Zipf-distributed popularity."""
    workload = zipfian_workload(version_ids, exponent=exponent, seed=seed)
    return sample_accesses(workload, num_requests, seed=seed + 1)


def _serve_pass(
    service: VersionStoreService, stream: Sequence
) -> tuple[float, float, int]:
    """Serve every request; returns (total_s, max_request_s, deltas_applied)."""
    deltas_before = service.stats_counters.deltas_applied
    slowest = 0.0
    started = time.perf_counter()
    for version_id in stream:
        request_started = time.perf_counter()
        service.checkout(version_id)
        slowest = max(slowest, time.perf_counter() - request_started)
    total = time.perf_counter() - started
    return total, slowest, service.stats_counters.deltas_applied - deltas_before


def serve_warm_vs_cold(
    graphs: Mapping[str, VersionGraph] | None = None,
    *,
    num_requests: int = 300,
    exponent: float = 2.0,
    cache_size: int = 256,
    strategy: str = "dfs",
    seed: int = 0,
) -> list[dict[str, float | str]]:
    """Serve one Zipf stream cold, then replay it warm, per scenario.

    Returns one row per scenario: delta applications and latency of the
    cold pass (cache starts empty, warming as it goes) and of the warm
    replay, plus the naive count a cache-less sequential server would have
    paid for the whole double stream.  Payloads of the warm pass are
    byte-identical to direct repository checkouts by construction (the
    service returns the cached payload object itself); correctness is
    asserted separately by the test suite, latency is measured here.
    """
    if graphs is None:
        graphs = batch_benchmark_scenarios(seed=seed)

    rows: list[dict[str, float | str]] = []
    for name, graph in graphs.items():
        repo = build_repository_from_graph(graph, seed=seed)
        service = VersionStoreService(repo, cache_size=cache_size, strategy=strategy)
        stream = zipf_request_stream(
            repo.graph.version_ids, num_requests, exponent=exponent, seed=seed
        )

        service.materializer.clear_cache()
        cold_seconds, cold_slowest, cold_deltas = _serve_pass(service, stream)
        warm_seconds, warm_slowest, warm_deltas = _serve_pass(service, stream)

        naive = service.stats_counters.naive_delta_applications
        rows.append(
            {
                "scenario": name,
                "num_versions": float(len(repo)),
                "num_requests": float(num_requests),
                "cold_deltas": float(cold_deltas),
                "warm_deltas": float(warm_deltas),
                "naive_deltas": float(naive),
                "cold_seconds": cold_seconds,
                "warm_seconds": warm_seconds,
                "cold_slowest_ms": 1000 * cold_slowest,
                "warm_slowest_ms": 1000 * warm_slowest,
                "mean_cold_ms": 1000 * cold_seconds / num_requests,
                "mean_warm_ms": 1000 * warm_seconds / num_requests,
            }
        )
    return rows
