"""Benchmark driver: batch checkout vs. naive sequential checkout.

The optimization layer reasons about recreation cost one checkout at a
time; the batch engine (:mod:`repro.storage.batch`) amortizes shared
delta-chain prefixes across a whole batch of checkouts.  This driver
quantifies the gap on repositories whose histories mirror the LC/DC/BF
evaluation scenarios: every version is committed with real line payloads
following the scenario's version graph, every version is then checked out
(a) sequentially with no cache and (b) through the batch engine, and the
delta applications, recreation cost and wall-clock time of both are
reported.
"""

from __future__ import annotations

import random
import time
from typing import Mapping, Sequence

from ..core.version_graph import VersionGraph
from ..datagen.scenarios import bootstrap_forks, densely_connected, linear_chain
from ..delta.base import DeltaEncoder
from ..storage.batch import BatchMaterializer
from ..storage.materializer import Materializer
from ..storage.repository import Repository

__all__ = [
    "build_repository_from_graph",
    "batch_vs_sequential",
    "batch_benchmark_scenarios",
]


def build_repository_from_graph(
    graph: VersionGraph,
    *,
    seed: int = 0,
    rows: int = 40,
    mutations: int = 3,
    encoder: DeltaEncoder | None = None,
    link_roots: bool | None = None,
) -> Repository:
    """Commit synthetic line payloads along ``graph``'s history.

    Each version's payload is its first parent's payload with a few mutated
    and appended lines, so the repository's natural encoding is a delta
    chain shaped exactly like the scenario's version graph.

    Fork datasets (BF/LF) have no VCS ancestry — every fork is a parentless
    near-duplicate.  With ``link_roots`` every root after the first is
    derived from, and committed as a child of, the previously ingested
    root, mirroring how a fork-archival system deltas incoming forks
    against the copies it already holds.  The default (``None``) links
    automatically when the graph has several roots; passing ``False`` for
    such a graph raises, because :meth:`Repository.commit` cannot create a
    second true root once history exists (an empty ``parents`` falls back
    to the branch head, which would silently rewire the topology).
    """
    roots = graph.roots()
    if link_roots is None:
        link_roots = len(roots) > 1
    elif not link_roots and len(roots) > 1:
        raise ValueError(
            f"graph has {len(roots)} roots; Repository.commit cannot create "
            "additional true roots — pass link_roots=True (or None) to chain "
            "them"
        )
    rng = random.Random(seed)
    repo = Repository(encoder=encoder)
    payloads: dict[object, list[str]] = {}

    def mutate(base: list[str], vid: object) -> list[str]:
        payload = list(base)
        for _ in range(mutations):
            index = rng.randrange(len(payload))
            payload[index] = f"{vid},edit,{rng.randrange(1000)}"
        payload.append(f"{vid},append,{rng.randrange(1000)}")
        return payload

    previous_root: object | None = None
    for vid in graph.topological_order():
        parents = list(graph.parents(vid))
        if not parents and link_roots and previous_root is not None:
            payload = mutate(payloads[previous_root], vid)
            parents = [previous_root]
            previous_root = vid
        elif not parents:
            payload = [f"{vid},{i},{rng.randrange(1000)}" for i in range(rows)]
            previous_root = vid
        else:
            payload = mutate(payloads[parents[0]], vid)
        payloads[vid] = payload
        repo.commit(payload, parents=tuple(parents), version_id=vid, message=str(vid))
    return repo


def batch_benchmark_scenarios(*, scale: float = 1.0, seed: int = 0) -> dict[str, VersionGraph]:
    """The LC/DC/BF version graphs at a laptop-friendly size."""
    lc = linear_chain(max(20, int(60 * scale)), seed=seed)
    dc = densely_connected(max(20, int(60 * scale)), seed=seed + 1)
    bf = bootstrap_forks(max(10, int(25 * scale)), seed=seed + 2)
    return {"LC": lc.graph, "DC": dc.graph, "BF": bf.graph}


def batch_vs_sequential(
    graphs: Mapping[str, VersionGraph] | None = None,
    *,
    cache_size: int = 64,
    seed: int = 0,
) -> list[dict[str, float | str]]:
    """Check out every version of each scenario both ways and compare.

    Returns one row per scenario with the delta applications, recreation
    cost and wall-clock time of naive sequential serving versus the batch
    engine, plus the resulting savings ratios.  Payload equality between the
    two paths is verified as part of the run.
    """
    if graphs is None:
        graphs = batch_benchmark_scenarios(seed=seed)

    rows: list[dict[str, float | str]] = []
    for name, graph in graphs.items():
        repo = build_repository_from_graph(graph, seed=seed)
        version_ids: Sequence = repo.graph.version_ids

        sequential = Materializer(repo.store, repo.encoder, cache_size=0)
        start = time.perf_counter()
        sequential_deltas = 0
        sequential_cost = 0.0
        sequential_payloads = {}
        for vid in version_ids:
            result = sequential.materialize(repo.object_id_of(vid))
            sequential_deltas += result.chain_length
            sequential_cost += result.recreation_cost
            sequential_payloads[vid] = result.payload
        sequential_time = time.perf_counter() - start

        batch = BatchMaterializer(repo.store, repo.encoder, cache_size=cache_size)
        start = time.perf_counter()
        batch_result = batch.materialize_many(
            [(vid, repo.object_id_of(vid)) for vid in version_ids]
        )
        batch_time = time.perf_counter() - start

        mismatches = sum(
            1
            for vid in version_ids
            if batch_result.items[vid].payload != sequential_payloads[vid]
        )
        summary = batch_result.summary()
        rows.append(
            {
                "scenario": name,
                "num_versions": float(len(version_ids)),
                "sequential_deltas": float(sequential_deltas),
                "batch_deltas": float(batch_result.deltas_applied),
                "delta_savings": (
                    1.0 - batch_result.deltas_applied / sequential_deltas
                    if sequential_deltas
                    else 0.0
                ),
                "sequential_cost": sequential_cost,
                "batch_cost": summary["recreation_cost_paid"],
                "sequential_seconds": sequential_time,
                "batch_seconds": batch_time,
                "payload_mismatches": float(mismatches),
            }
        )
    return rows


# --------------------------------------------------------------------- #
# CLI entry point: the fast benches -> BENCH_batch.json (CI artifact)
# --------------------------------------------------------------------- #
def main(argv: "Sequence[str] | None" = None) -> int:
    """Run the batch-engine benchmarks and emit a ``BENCH_batch.json``.

    ``python -m repro.bench.batch_bench --output BENCH_batch.json`` — run
    by the CI benchmark step and uploaded as an artifact, mirroring
    :mod:`repro.bench.serve_bench`'s trajectory file.
    """
    import argparse

    from .results import write_bench_json

    parser = argparse.ArgumentParser(
        description="batch benchmarks -> BENCH_batch.json"
    )
    parser.add_argument("--output", default="BENCH_batch.json")
    parser.add_argument(
        "--timestamp",
        default=None,
        help="stamp recorded in the document (CI passes the commit SHA)",
    )
    parser.add_argument("--cache-size", type=int, default=64)
    parser.add_argument("--scale", type=float, default=0.5)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    graphs = batch_benchmark_scenarios(scale=args.scale, seed=args.seed)
    params = {
        "cache_size": args.cache_size,
        "scale": args.scale,
        "seed": args.seed,
    }
    metrics = {
        "batch_vs_sequential": batch_vs_sequential(
            graphs, cache_size=args.cache_size, seed=args.seed
        ),
    }
    write_bench_json(args.output, "batch", params, metrics, args.timestamp)
    print(f"wrote {args.output} ({len(metrics)} benchmark groups)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
