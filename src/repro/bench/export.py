"""Export helpers: persist experiment series as CSV/JSON.

The benchmark targets print their series; this module lets users save them
for plotting (the paper's figures are line plots over exactly these rows).
Only the standard library is used so exports work in any environment.
"""

from __future__ import annotations

import csv
import json
from typing import Mapping

from .harness import SweepSeries

__all__ = ["series_to_rows", "write_csv", "write_json", "figure_to_dict"]

_HEADERS = ["algorithm", "parameter", "storage_cost", "sum_recreation", "max_recreation", "weighted_recreation"]


def series_to_rows(series: SweepSeries) -> list[list[float | str]]:
    """Flatten a sweep series into plottable rows."""
    return [
        [
            series.algorithm,
            point.parameter,
            point.storage_cost,
            point.sum_recreation,
            point.max_recreation,
            point.weighted_recreation,
        ]
        for point in series.points
    ]


def figure_to_dict(result: Mapping[str, object]) -> dict[str, object]:
    """Convert an experiment-driver result into a JSON-serializable dict.

    Sweep series become lists of point dictionaries; reference-cost mappings
    and other plain values pass through unchanged.
    """
    payload: dict[str, object] = {}
    for key, value in result.items():
        if isinstance(value, SweepSeries):
            payload[key] = [
                {
                    "parameter": point.parameter,
                    "storage_cost": point.storage_cost,
                    "sum_recreation": point.sum_recreation,
                    "max_recreation": point.max_recreation,
                    "weighted_recreation": point.weighted_recreation,
                }
                for point in value.points
            ]
        else:
            payload[key] = value
    return payload


def write_csv(result: Mapping[str, object], path: str) -> None:
    """Write every sweep series in ``result`` to one CSV file."""
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(_HEADERS)
        for value in result.values():
            if isinstance(value, SweepSeries):
                writer.writerows(series_to_rows(value))


def write_json(result: Mapping[str, object], path: str) -> None:
    """Write the full experiment result (series + references) as JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(figure_to_dict(result), handle, indent=2, sort_keys=True)
