"""Benchmark harness: sweeps, reference costs and per-figure experiment drivers.

The :mod:`~repro.bench.experiments` module has one driver per table/figure of
the paper's evaluation (see the E1–E8 index in DESIGN.md); the
:mod:`~repro.bench.harness` module holds the shared sweep and formatting
machinery; :mod:`~repro.bench.batch_bench` compares the batch checkout
engine against naive sequential serving on the LC/DC/BF scenarios.
"""

from . import batch_bench, experiments, export
from .batch_bench import batch_vs_sequential, build_repository_from_graph
from .harness import (
    SweepPoint,
    SweepSeries,
    budget_grid,
    format_table,
    reference_costs,
    sweep_gith,
    sweep_last,
    sweep_lmg,
    sweep_mp,
)

__all__ = [
    "batch_bench",
    "experiments",
    "export",
    "batch_vs_sequential",
    "build_repository_from_graph",
    "SweepPoint",
    "SweepSeries",
    "budget_grid",
    "format_table",
    "reference_costs",
    "sweep_gith",
    "sweep_last",
    "sweep_lmg",
    "sweep_mp",
]
