"""Benchmark harness: sweeps, reference costs and per-figure experiment drivers.

The :mod:`~repro.bench.experiments` module has one driver per table/figure of
the paper's evaluation (see the E1–E8 index in DESIGN.md); the
:mod:`~repro.bench.harness` module holds the shared sweep and formatting
machinery.
"""

from . import experiments, export
from .harness import (
    SweepPoint,
    SweepSeries,
    budget_grid,
    format_table,
    reference_costs,
    sweep_gith,
    sweep_last,
    sweep_lmg,
    sweep_mp,
)

__all__ = [
    "experiments",
    "export",
    "SweepPoint",
    "SweepSeries",
    "budget_grid",
    "format_table",
    "reference_costs",
    "sweep_gith",
    "sweep_last",
    "sweep_lmg",
    "sweep_mp",
]
