"""Benchmark trajectory files: ``BENCH_*.json`` emission.

Every benchmark entry point can persist its result rows as one JSON
document so CI uploads them as artifacts and successive PRs accumulate a
performance trajectory (ROADMAP item 5).  The schema is deliberately
flat and stable:

.. code-block:: json

    {
      "benchmark": "serve",
      "timestamp": "2026-08-07T12:00:00Z",
      "params": {"num_requests": 60, "seed": 0},
      "metrics": {"serve_warm_vs_cold": [{"scenario": "...", ...}]}
    }

``timestamp`` is caller-supplied (CI passes the commit SHA or a build
time) so re-running the same commit produces byte-identical files.
"""

from __future__ import annotations

import json
import time
from typing import Any, Mapping

__all__ = ["bench_document", "write_bench_json"]


def bench_document(
    benchmark: str,
    params: Mapping[str, Any],
    metrics: Mapping[str, Any],
    timestamp: str | None = None,
) -> dict[str, Any]:
    """Assemble the trajectory-file document (see the module docstring)."""
    return {
        "benchmark": str(benchmark),
        "timestamp": timestamp
        or time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "params": dict(params),
        "metrics": {name: value for name, value in metrics.items()},
    }


def write_bench_json(
    path: str,
    benchmark: str,
    params: Mapping[str, Any],
    metrics: Mapping[str, Any],
    timestamp: str | None = None,
) -> dict[str, Any]:
    """Write one ``BENCH_*.json`` document to *path* and return it."""
    document = bench_document(benchmark, params, metrics, timestamp)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True, default=str)
        handle.write("\n")
    return document
