"""One driver per paper table/figure (the E1–E8 index of DESIGN.md).

Each function takes pre-built :class:`~repro.datagen.scenarios.ScenarioDataset`
objects (or builds small default ones), runs the relevant algorithms and
returns plain dictionaries/lists that the benchmark targets print and assert
on.  Keeping the drivers here — rather than inside the pytest-benchmark
files — makes them reusable from the examples and from interactive sessions.
"""

from __future__ import annotations

import time
from typing import Mapping, Sequence

from ..algorithms.gith import git_heuristic_plan
from ..algorithms.ilp import solve_ilp_max_recreation
from ..algorithms.last import last_plan
from ..algorithms.lmg import local_move_greedy
from ..algorithms.mp import minimum_feasible_threshold, modified_prim
from ..algorithms.mst import minimum_storage_plan
from ..algorithms.shortest_path import shortest_path_plan
from ..baselines.gzip_baseline import gzip_cost_report
from ..baselines.naive import materialize_all_plan
from ..baselines.svn_skip_delta import svn_skip_delta_report
from ..core.instance import ProblemInstance
from ..datagen.scenarios import ScenarioDataset
from ..datagen.workload import normalize_workload, zipfian_workload
from .harness import (
    SweepSeries,
    budget_grid,
    reference_costs,
    sweep_gith,
    sweep_last,
    sweep_lmg,
    sweep_mp,
)

__all__ = [
    "figure12_dataset_properties",
    "section52_vcs_comparison",
    "figure13_directed_sum_recreation",
    "figure14_directed_max_recreation",
    "figure15_undirected",
    "figure16_workload_aware",
    "figure17_running_times",
    "table2_ilp_vs_mp",
]


# --------------------------------------------------------------------- #
# E1 — Figure 12
# --------------------------------------------------------------------- #
def figure12_dataset_properties(
    datasets: Mapping[str, ScenarioDataset]
) -> dict[str, dict[str, float]]:
    """Dataset property table: versions, deltas, MCA and SPT costs."""
    return {name: dataset.summary() for name, dataset in datasets.items()}


# --------------------------------------------------------------------- #
# E2 — Section 5.2
# --------------------------------------------------------------------- #
def section52_vcs_comparison(dataset: ScenarioDataset) -> dict[str, dict[str, float]]:
    """Compare gzip, SVN skip-delta, GitH and MCA on an LF-style dataset."""
    instance = dataset.instance
    results: dict[str, dict[str, float]] = {}

    naive = materialize_all_plan(instance).evaluate(instance)
    results["naive"] = naive.as_dict()

    results["gzip"] = gzip_cost_report(instance).as_dict()
    results["svn_skip_delta"] = svn_skip_delta_report(instance).as_dict()

    gith = git_heuristic_plan(instance, window=25, max_depth=50).evaluate(instance)
    results["gith"] = gith.as_dict()

    mca = minimum_storage_plan(instance).evaluate(instance)
    results["mca"] = mca.as_dict()
    return results


# --------------------------------------------------------------------- #
# E3 / E4 — Figures 13 and 14 (directed case)
# --------------------------------------------------------------------- #
def figure13_directed_sum_recreation(
    dataset: ScenarioDataset,
    *,
    budget_factors: Sequence[float] = (1.05, 1.1, 1.25, 1.5, 2.0, 3.0),
    gith_windows: Sequence[int] = (5, 10, 25, 50),
) -> dict[str, SweepSeries | dict[str, float]]:
    """Storage cost vs. sum of recreation costs for LMG/MP/LAST/GitH."""
    instance = dataset.instance
    budgets = budget_grid(instance, budget_factors)
    return {
        "references": reference_costs(instance),
        "LMG": sweep_lmg(instance, budgets),
        "MP": sweep_mp(instance),
        "LAST": sweep_last(instance),
        "GitH": sweep_gith(instance, gith_windows),
    }


def figure14_directed_max_recreation(
    dataset: ScenarioDataset,
    *,
    budget_factors: Sequence[float] = (1.05, 1.1, 1.25, 1.5, 2.0, 3.0),
) -> dict[str, SweepSeries | dict[str, float]]:
    """Storage cost vs. maximum recreation cost for LMG/MP/LAST."""
    instance = dataset.instance
    budgets = budget_grid(instance, budget_factors)
    return {
        "references": reference_costs(instance),
        "LMG": sweep_lmg(instance, budgets),
        "MP": sweep_mp(instance),
        "LAST": sweep_last(instance),
    }


# --------------------------------------------------------------------- #
# E5 — Figure 15 (undirected case)
# --------------------------------------------------------------------- #
def figure15_undirected(
    dataset: ScenarioDataset,
    *,
    budget_factors: Sequence[float] = (1.05, 1.1, 1.25, 1.5, 2.0, 3.0),
) -> dict[str, SweepSeries | dict[str, float]]:
    """The Figure 13/14 sweeps on undirected (symmetric-Δ) instances."""
    instance = dataset.instance
    budgets = budget_grid(instance, budget_factors)
    return {
        "references": reference_costs(instance),
        "LMG": sweep_lmg(instance, budgets),
        "MP": sweep_mp(instance),
        "LAST": sweep_last(instance),
    }


# --------------------------------------------------------------------- #
# E6 — Figure 16 (workload-aware LMG)
# --------------------------------------------------------------------- #
def figure16_workload_aware(
    dataset: ScenarioDataset,
    *,
    zipf_exponent: float = 2.0,
    budget_factors: Sequence[float] = (1.1, 1.5, 2.0, 3.0),
    seed: int = 0,
) -> dict[str, list[tuple[float, float]]]:
    """Weighted recreation cost of workload-aware vs. oblivious LMG.

    Returns, per variant, a list of ``(storage_budget, weighted_recreation)``
    points computed on the *same* Zipfian workload — the workload-aware run
    optimizes for it, the oblivious run ignores it.
    """
    workload = normalize_workload(
        zipfian_workload(dataset.instance.version_ids, exponent=zipf_exponent, seed=seed)
    )
    weighted_instance = dataset.instance.with_access_frequencies(workload)
    budgets = budget_grid(weighted_instance, budget_factors)

    aware: list[tuple[float, float]] = []
    oblivious: list[tuple[float, float]] = []
    for budget in budgets:
        aware_plan = local_move_greedy(weighted_instance, budget, use_workload=True)
        oblivious_plan = local_move_greedy(weighted_instance, budget, use_workload=False)
        aware.append((budget, aware_plan.evaluate(weighted_instance).weighted_recreation))
        oblivious.append(
            (budget, oblivious_plan.evaluate(weighted_instance).weighted_recreation)
        )
    return {"LMG-W": aware, "LMG": oblivious}


# --------------------------------------------------------------------- #
# E7 — Figure 17 (running times)
# --------------------------------------------------------------------- #
def figure17_running_times(
    dataset: ScenarioDataset,
    *,
    sizes: Sequence[int] = (25, 50, 100, 200),
    budget_factor: float = 3.0,
) -> list[dict[str, float]]:
    """Wall-clock running time of LMG/MP/LAST on growing BFS subgraphs.

    Mirrors the paper's methodology: subgraphs of increasing size are carved
    out of the dataset by BFS, and each algorithm is timed on each subgraph
    (LMG with a storage budget of ``budget_factor`` times the MST cost, MP
    with the loosest feasible threshold, LAST with α = 2).
    """
    rows: list[dict[str, float]] = []
    start_vertex = dataset.graph.version_ids[0]
    for size in sizes:
        if size > len(dataset.graph):
            continue
        subgraph = dataset.graph.bfs_subgraph(start_vertex, size)
        instance = ProblemInstance.from_version_graph(subgraph, dataset.cost_model)

        begin = time.perf_counter()
        mst_plan = minimum_storage_plan(instance)
        spt_plan = shortest_path_plan(instance)
        prep_time = time.perf_counter() - begin
        budget = budget_factor * mst_plan.storage_cost(instance)

        begin = time.perf_counter()
        local_move_greedy(instance, budget)
        lmg_time = time.perf_counter() - begin

        begin = time.perf_counter()
        modified_prim(instance, minimum_feasible_threshold(instance) * 2.0, strict=False)
        mp_time = time.perf_counter() - begin

        begin = time.perf_counter()
        last_plan(instance, alpha=2.0, initial_plan=mst_plan)
        last_time = time.perf_counter() - begin

        rows.append(
            {
                "num_versions": float(len(instance)),
                "prep_seconds": prep_time,
                "lmg_seconds": lmg_time,
                "mp_seconds": mp_time,
                "last_seconds": last_time,
                "spt_storage": spt_plan.storage_cost(instance),
            }
        )
    return rows


# --------------------------------------------------------------------- #
# E8 — Table 2 (ILP vs MP)
# --------------------------------------------------------------------- #
def table2_ilp_vs_mp(
    instance: ProblemInstance,
    thresholds: Sequence[float],
    *,
    use_milp: bool = True,
) -> list[dict[str, float]]:
    """Optimal (ILP) vs. MP storage cost for a sweep of θ values."""
    rows: list[dict[str, float]] = []
    for theta in thresholds:
        mp_plan = modified_prim(instance, theta, strict=False)
        row = {
            "theta": float(theta),
            "mp_storage": mp_plan.storage_cost(instance),
            "mp_max_recreation": mp_plan.evaluate(instance).max_recreation,
        }
        if use_milp:
            ilp_plan = solve_ilp_max_recreation(instance, theta)
            row["ilp_storage"] = ilp_plan.storage_cost(instance)
            row["ilp_max_recreation"] = ilp_plan.evaluate(instance).max_recreation
        rows.append(row)
    return rows
