"""repro — a reproduction of "Principles of Dataset Versioning" (VLDB 2015).

The package implements the paper's storage/recreation tradeoff framework:

* :mod:`repro.core` — versions, version graphs, the Δ/Φ cost matrices,
  problem instances, storage plans and the six-problem dispatcher;
* :mod:`repro.algorithms` — MST/MCA, shortest-path trees, LMG, MP, LAST,
  GitH and exact ILP solvers;
* :mod:`repro.delta` — concrete differencing mechanisms (line, cell, XOR,
  edit-command deltas) that produce real Δ/Φ costs;
* :mod:`repro.storage` — a miniature DataHub-style version manager that
  executes storage plans (commit/checkout/branch/merge);
* :mod:`repro.datagen` — synthetic version-graph, dataset, cost and workload
  generators, including the DC/LC/BF/LF evaluation scenarios;
* :mod:`repro.baselines` — naive, SVN skip-delta and gzip baselines;
* :mod:`repro.bench` — the experiment harness that regenerates every table
  and figure of the paper's evaluation section.

Quickstart
----------
>>> from repro import datagen, solve, ProblemKind
>>> dataset = datagen.scenarios.linear_chain(num_versions=50, seed=7)
>>> result = solve(dataset.instance, ProblemKind.MINSUM_RECREATION,
...                threshold=2.0 * dataset.mca_storage_cost)
>>> result.metrics.storage_cost <= 2.0 * dataset.mca_storage_cost
True
"""

from . import algorithms, baselines, bench, core, datagen, delta, online, storage
from .core import (
    ROOT,
    Algorithm,
    CostMatrix,
    CostModel,
    Objective,
    PlanMetrics,
    ProblemInstance,
    ProblemKind,
    Scenario,
    SolveResult,
    StoragePlan,
    Version,
    VersionGraph,
    solve,
)
from .exceptions import ReproError
from .storage import (
    BatchMaterializer,
    BatchResult,
    Repository,
    StorageBackend,
    open_backend,
)

__version__ = "1.1.0"

__all__ = [
    "algorithms",
    "baselines",
    "bench",
    "core",
    "datagen",
    "delta",
    "online",
    "storage",
    "ROOT",
    "Algorithm",
    "CostMatrix",
    "CostModel",
    "Objective",
    "PlanMetrics",
    "ProblemInstance",
    "ProblemKind",
    "Scenario",
    "SolveResult",
    "StoragePlan",
    "Version",
    "VersionGraph",
    "solve",
    "ReproError",
    "BatchMaterializer",
    "BatchResult",
    "Repository",
    "StorageBackend",
    "open_backend",
    "__version__",
]
