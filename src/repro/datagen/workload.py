"""Access-frequency workloads.

Figure 16 of the paper evaluates a workload-aware variant of LMG where each
version is assigned an access frequency drawn from a Zipfian distribution
with exponent 2 ("real-world access frequencies are known to follow such
distributions").  This module generates those workloads plus a few other
shapes useful for testing and ablations (uniform, recency-biased).
"""

from __future__ import annotations

import random
from typing import Mapping, Sequence

from ..core.version import VersionID

__all__ = [
    "zipfian_workload",
    "uniform_workload",
    "recency_workload",
    "normalize_workload",
    "sample_accesses",
]


def zipfian_workload(
    version_ids: Sequence[VersionID],
    exponent: float = 2.0,
    seed: int = 0,
    shuffle: bool = True,
) -> dict[VersionID, float]:
    """Zipf-distributed access frequencies over ``version_ids``.

    The k-th most popular version receives weight ``1 / k**exponent``.  With
    ``shuffle=True`` (default) popularity ranks are assigned in a random
    order, so popularity is independent of version age; with
    ``shuffle=False`` earlier versions are the most popular.
    """
    if exponent <= 0:
        raise ValueError("Zipf exponent must be positive")
    ids = list(version_ids)
    rng = random.Random(seed)
    ranked = list(ids)
    if shuffle:
        rng.shuffle(ranked)
    weights = {vid: 1.0 / ((rank + 1) ** exponent) for rank, vid in enumerate(ranked)}
    return {vid: weights[vid] for vid in ids}


def uniform_workload(version_ids: Sequence[VersionID]) -> dict[VersionID, float]:
    """Every version accessed equally often (the paper's default)."""
    return {vid: 1.0 for vid in version_ids}


def recency_workload(
    version_ids: Sequence[VersionID], half_life: float = 10.0
) -> dict[VersionID, float]:
    """Exponentially decaying access frequencies favoring recent versions.

    Versions are assumed to be ordered oldest-to-newest (which is how every
    generator in this package emits them); the newest version has weight 1
    and weights halve every ``half_life`` versions going back in time.
    """
    if half_life <= 0:
        raise ValueError("half_life must be positive")
    ids = list(version_ids)
    newest = len(ids) - 1
    return {
        vid: 0.5 ** ((newest - index) / half_life) for index, vid in enumerate(ids)
    }


def normalize_workload(workload: Mapping[VersionID, float]) -> dict[VersionID, float]:
    """Scale frequencies so they sum to the number of versions.

    Keeping the total equal to ``len(workload)`` makes weighted recreation
    costs directly comparable to unweighted sums (a uniform workload is the
    identity under this normalization).
    """
    total = float(sum(workload.values()))
    if total <= 0:
        raise ValueError("workload weights must sum to a positive value")
    scale = len(workload) / total
    return {vid: freq * scale for vid, freq in workload.items()}


def sample_accesses(
    workload: Mapping[VersionID, float], num_accesses: int, seed: int = 0
) -> list[VersionID]:
    """Draw a concrete access trace from a frequency distribution.

    Used by the repository example and by tests that replay checkouts
    against a packed repository.
    """
    rng = random.Random(seed)
    ids = list(workload)
    weights = [workload[vid] for vid in ids]
    return rng.choices(ids, weights=weights, k=num_accesses)
