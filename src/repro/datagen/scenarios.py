"""Canonical evaluation scenarios: DC, LC, BF and LF (scaled to laptop size).

Figure 12 of the paper summarizes four workloads:

* **DC** (Densely Connected) — a flat synthetic history with many short
  branches; deltas revealed within a 10-hop neighborhood;
* **LC** (Linear Chain) — a mostly linear synthetic history with few long
  branches; deltas revealed within a 25-hop neighborhood;
* **BF** (Bootstrap Forks) — 986 forks of Twitter Bootstrap, all-pairs
  deltas under a 100 KB size-difference threshold;
* **LF** (Linux Forks) — 100 forks of Linux, all-pairs deltas under a 10 MB
  threshold.

This module builds scaled-down equivalents (hundreds of versions instead of
100k; kilobyte-scale versions instead of hundreds of megabytes) with the
same structural signatures, wrapped in a :class:`ScenarioDataset` that also
precomputes the reference MCA/SPT plans used throughout the benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from ..algorithms.mst import minimum_storage_plan
from ..algorithms.shortest_path import shortest_path_plan
from ..core.instance import ProblemInstance
from ..core.matrices import CostModel
from ..core.storage_plan import StoragePlan
from ..core.version_graph import VersionGraph
from .cost_gen import SyntheticCostConfig, synthetic_costs
from .forks_gen import ForkDatasetConfig, generate_fork_dataset
from .graph_gen import flat_history_graph, linear_chain_graph

__all__ = [
    "ScenarioDataset",
    "densely_connected",
    "linear_chain",
    "bootstrap_forks",
    "linux_forks",
    "all_scenarios",
]


@dataclass
class ScenarioDataset:
    """A named evaluation dataset plus its reference plans and costs."""

    name: str
    graph: VersionGraph
    cost_model: CostModel
    description: str = ""

    @cached_property
    def instance(self) -> ProblemInstance:
        """The problem instance (augmented graph) for this dataset."""
        return ProblemInstance.from_version_graph(self.graph, self.cost_model)

    @cached_property
    def mca_plan(self) -> StoragePlan:
        """The storage-optimal plan (MST / minimum-cost arborescence)."""
        return minimum_storage_plan(self.instance)

    @cached_property
    def spt_plan(self) -> StoragePlan:
        """The recreation-optimal plan (shortest-path tree)."""
        return shortest_path_plan(self.instance)

    @property
    def mca_storage_cost(self) -> float:
        """Minimum achievable total storage cost."""
        return self.mca_plan.storage_cost(self.instance)

    @property
    def spt_storage_cost(self) -> float:
        """Storage cost of the recreation-optimal plan."""
        return self.spt_plan.storage_cost(self.instance)

    def summary(self) -> dict[str, float]:
        """The Figure-12 property rows for this dataset."""
        instance = self.instance
        mca_metrics = self.mca_plan.evaluate(instance)
        spt_metrics = self.spt_plan.evaluate(instance)
        base = instance.summary()
        base.update(
            {
                "mca_storage_cost": mca_metrics.storage_cost,
                "mca_sum_recreation": mca_metrics.sum_recreation,
                "mca_max_recreation": mca_metrics.max_recreation,
                "spt_storage_cost": spt_metrics.storage_cost,
                "spt_sum_recreation": spt_metrics.sum_recreation,
                "spt_max_recreation": spt_metrics.max_recreation,
            }
        )
        return base

    def normalized_delta_sizes(self) -> list[float]:
        """Delta sizes divided by the average version size (Figure 12, right)."""
        summary = self.instance.summary()
        average = summary["average_version_size"] or 1.0
        return [
            storage / average
            for (_, _), storage in self.cost_model.delta.off_diagonal_items()
        ]


def densely_connected(
    num_versions: int = 300,
    *,
    seed: int = 0,
    directed: bool = True,
    proportional: bool = False,
    hop_limit: int = 4,
) -> ScenarioDataset:
    """The DC workload: a flat, heavily branched history with many deltas."""
    graph = flat_history_graph(num_versions, seed=seed)
    config = SyntheticCostConfig(
        base_size_mean=10_000.0,
        delta_fraction_mean=0.03,
        distance_growth=0.5,
        proportional=proportional,
        directed=directed,
        seed=seed + 1,
    )
    model = synthetic_costs(graph, config, hop_limit=hop_limit)
    return ScenarioDataset(
        name="DC",
        graph=graph,
        cost_model=model,
        description="Densely connected synthetic history (flat, many branches)",
    )


def linear_chain(
    num_versions: int = 300,
    *,
    seed: int = 1,
    directed: bool = True,
    proportional: bool = False,
    hop_limit: int = 8,
) -> ScenarioDataset:
    """The LC workload: a mostly linear history with deltas along the chain."""
    graph = linear_chain_graph(num_versions, seed=seed)
    config = SyntheticCostConfig(
        base_size_mean=10_000.0,
        delta_fraction_mean=0.05,
        distance_growth=0.35,
        proportional=proportional,
        directed=directed,
        seed=seed + 1,
    )
    model = synthetic_costs(graph, config, hop_limit=hop_limit)
    return ScenarioDataset(
        name="LC",
        graph=graph,
        cost_model=model,
        description="Mostly linear synthetic history (long chains, few branches)",
    )


def bootstrap_forks(
    num_forks: int = 150,
    *,
    seed: int = 2,
    directed: bool = True,
) -> ScenarioDataset:
    """The BF workload: many small forks of a common project (simulated)."""
    config = ForkDatasetConfig(
        num_forks=num_forks,
        upstream_length=30,
        base_size=4_000.0,
        divergence_fraction=0.01,
        pair_threshold_fraction=0.05,
        directed=directed,
        seed=seed,
    )
    dataset = generate_fork_dataset(config)
    return ScenarioDataset(
        name="BF",
        graph=dataset.graph,
        cost_model=dataset.cost_model,
        description="Bootstrap-forks-like collection (many small near-duplicate forks)",
    )


def linux_forks(
    num_forks: int = 60,
    *,
    seed: int = 3,
    directed: bool = True,
) -> ScenarioDataset:
    """The LF workload: fewer, larger forks of a common project (simulated)."""
    config = ForkDatasetConfig(
        num_forks=num_forks,
        upstream_length=15,
        base_size=400_000.0,
        divergence_fraction=0.005,
        pair_threshold_fraction=0.03,
        directed=directed,
        seed=seed,
    )
    dataset = generate_fork_dataset(config)
    return ScenarioDataset(
        name="LF",
        graph=dataset.graph,
        cost_model=dataset.cost_model,
        description="Linux-forks-like collection (fewer, larger near-duplicate forks)",
    )


def all_scenarios(
    *, scale: float = 1.0, directed: bool = True, seed: int = 0
) -> dict[str, ScenarioDataset]:
    """All four canonical scenarios, optionally scaled up or down.

    ``scale`` multiplies the number of versions in every dataset; the
    benchmark harness uses small scales for smoke runs and larger ones for
    full figure regeneration.
    """
    return {
        "DC": densely_connected(max(20, int(300 * scale)), seed=seed, directed=directed),
        "LC": linear_chain(max(20, int(300 * scale)), seed=seed + 1, directed=directed),
        "BF": bootstrap_forks(max(15, int(150 * scale)), seed=seed + 2, directed=directed),
        "LF": linux_forks(max(10, int(60 * scale)), seed=seed + 3, directed=directed),
    }
