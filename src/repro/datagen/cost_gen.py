"""Cost annotation: turning version graphs (and payloads) into Δ/Φ matrices.

Two routes are supported:

* **Payload-driven** (:func:`costs_from_tables`) — run a real delta encoder
  from :mod:`repro.delta` over the generated tables; Δ and Φ entries are the
  encoder's measured storage and recreation costs.  This is slower but every
  number is backed by an actual delta that can be applied.

* **Synthetic** (:func:`synthetic_costs`) — draw delta sizes from a
  parameterized distribution relative to the version sizes, mirroring the
  scale of the paper's DC/LC/BF/LF workloads without materializing payloads.
  The generated matrices respect the triangle-inequality structure the paper
  relies on (a delta is never larger than materializing the target).

Both routes honor a *reveal policy*: following Section 2.1, deltas are only
computed between versions that are close in the version graph (within
``hop_limit`` hops), because computing all-pairs deltas is infeasible for
real systems.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable

from ..core.matrices import CostModel
from ..core.version import VersionID
from ..core.version_graph import VersionGraph
from ..delta.base import DeltaEncoder, payload_size
from .table_gen import TableDataset

__all__ = [
    "SyntheticCostConfig",
    "synthetic_costs",
    "costs_from_tables",
    "reveal_pairs",
]


def reveal_pairs(
    graph: VersionGraph, hop_limit: int | None
) -> list[tuple[VersionID, VersionID]]:
    """Ordered pairs of versions whose delta should be revealed.

    ``hop_limit=None`` reveals only the version-graph edges themselves;
    ``hop_limit=k`` reveals every ordered pair within ``k`` undirected hops
    (the paper uses 10 hops for DC and 25 for LC); ``hop_limit=0`` reveals
    all ordered pairs.
    """
    if hop_limit is None:
        return graph.edges()
    if hop_limit == 0:
        ids = graph.version_ids
        return [(a, b) for a in ids for b in ids if a != b]
    pairs: list[tuple[VersionID, VersionID]] = []
    for source in graph.version_ids:
        distances = graph.undirected_hop_distance(source, max_hops=hop_limit)
        for target in distances:
            if target != source:
                pairs.append((source, target))
    return pairs


@dataclass(frozen=True)
class SyntheticCostConfig:
    """Parameters of the synthetic Δ/Φ generator.

    ``delta_fraction_mean``/``delta_fraction_spread`` control how large a
    delta is relative to the target version's full size; the fraction grows
    with the hop distance between the versions (more distant versions are
    less similar), scaled by ``distance_growth`` per hop.
    ``recreation_multiplier``/``recreation_noise`` control the Φ entries for
    the Φ ≠ Δ scenario (Φ = multiplier · Δ · noise); with
    ``proportional=True`` the Φ matrix is shared with Δ (Scenario 1/2).
    """

    base_size_mean: float = 10_000.0
    base_size_spread: float = 0.2
    size_drift: float = 0.02
    delta_fraction_mean: float = 0.05
    delta_fraction_spread: float = 0.5
    distance_growth: float = 0.6
    recreation_multiplier: float = 3.0
    recreation_noise: float = 0.3
    proportional: bool = False
    directed: bool = True
    reverse_delta_factor: float = 1.5
    seed: int = 0


def synthetic_costs(
    graph: VersionGraph,
    config: SyntheticCostConfig | None = None,
    hop_limit: int | None = 3,
) -> CostModel:
    """Generate a synthetic cost model for ``graph``.

    Version sizes follow a random walk along the version graph (children are
    slightly larger or smaller than their parents); delta sizes are a
    hop-distance-dependent fraction of the target's size, clamped so that a
    delta never exceeds materializing the target outright.
    """
    config = config or SyntheticCostConfig()
    rng = random.Random(config.seed)
    model = CostModel(
        directed=config.directed,
        phi_equals_delta=config.proportional,
    )

    sizes: dict[VersionID, float] = {}
    for vid in graph.topological_order():
        version = graph.version(vid)
        if version.is_root:
            spread = config.base_size_spread
            sizes[vid] = config.base_size_mean * rng.uniform(1 - spread, 1 + spread)
        else:
            parent_size = sizes[version.parents[0]]
            drift = rng.uniform(-config.size_drift, config.size_drift)
            sizes[vid] = max(1.0, parent_size * (1 + drift))
        model.set_materialization(vid, sizes[vid])

    hop_cache: dict[VersionID, dict[VersionID, int]] = {}

    def hops(a: VersionID, b: VersionID) -> int:
        if a not in hop_cache:
            hop_cache[a] = graph.undirected_hop_distance(
                a, max_hops=hop_limit if hop_limit else None
            )
        return hop_cache[a].get(b, hop_limit or 1)

    for source, target in reveal_pairs(graph, hop_limit):
        distance = max(1, hops(source, target))
        fraction = config.delta_fraction_mean * (
            1 + config.distance_growth * (distance - 1)
        )
        fraction *= rng.uniform(
            1 - config.delta_fraction_spread, 1 + config.delta_fraction_spread
        )
        storage = min(sizes[target] * max(fraction, 1e-4), sizes[target])
        if config.proportional:
            model.set_delta(source, target, storage)
        else:
            recreation = (
                storage
                * config.recreation_multiplier
                * rng.uniform(1 - config.recreation_noise, 1 + config.recreation_noise)
            )
            model.set_delta(source, target, storage, recreation)
        if config.directed and (target, source) not in model.delta:
            # Reveal the reverse direction as well, typically costlier (the
            # paper's example: a compact "delete all tuples with age > 60"
            # forward command versus a bulky reverse delta).
            reverse_storage = min(
                storage * config.reverse_delta_factor * rng.uniform(0.8, 1.2),
                sizes[source],
            )
            if config.proportional:
                model.set_delta(target, source, reverse_storage)
            else:
                reverse_recreation = (
                    reverse_storage
                    * config.recreation_multiplier
                    * rng.uniform(1 - config.recreation_noise, 1 + config.recreation_noise)
                )
                model.set_delta(target, source, reverse_storage, reverse_recreation)
    return model


def costs_from_tables(
    dataset: TableDataset,
    encoder: DeltaEncoder,
    *,
    hop_limit: int | None = None,
    directed: bool | None = None,
    pairs: Iterable[tuple[VersionID, VersionID]] | None = None,
) -> CostModel:
    """Measure Δ/Φ by running a real delta encoder over generated tables.

    ``pairs`` overrides the reveal policy when given; otherwise the pairs
    come from :func:`reveal_pairs` with ``hop_limit``.
    """
    if directed is None:
        directed = not encoder.symmetric
    model = CostModel(directed=directed, phi_equals_delta=False)
    for vid, table in dataset.tables.items():
        text = dataset.as_text(vid)
        size = payload_size(text)
        model.set_materialization(vid, size, size)
    selected = list(pairs) if pairs is not None else reveal_pairs(dataset.graph, hop_limit)
    for source, target in selected:
        delta = encoder.diff(dataset.as_text(source), dataset.as_text(target))
        model.set_delta(source, target, delta.storage_cost, delta.recreation_cost)
    return model
