"""Fork-style datasets (the paper's BF and LF workloads, simulated).

The paper's two real-world workloads are built from GitHub forks: 986 forks
of Twitter Bootstrap (BF) and 100 forks of Linux (LF).  Each fork's latest
tree is flattened into one large file and deltas are computed between every
pair of forks whose size difference is below a threshold.

Those repositories cannot be downloaded in this environment, so this module
generates a *statistically similar* substitute: a single upstream lineage of
an artificial "project file", plus many forks that branch off random points
of that lineage and then apply a handful of local edits.  The resulting
collection has the same signature the paper reports in Figure 12 — many
near-duplicate versions, deltas that are tiny relative to version size, and
a delta graph pruned by a pairwise size-difference threshold.

The substitution is recorded in DESIGN.md (Section 4).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..core.matrices import CostModel
from ..core.version import Version, VersionID
from ..core.version_graph import VersionGraph

__all__ = ["ForkDatasetConfig", "ForkDataset", "generate_fork_dataset"]


@dataclass(frozen=True)
class ForkDatasetConfig:
    """Parameters of the simulated fork collection.

    ``num_forks`` plays the role of the number of repositories; each fork's
    flattened file has roughly ``base_size`` units, individual forks diverge
    from upstream by ``divergence_fraction`` of the file on average, and
    deltas between forks are only revealed when the two sizes differ by less
    than ``pair_threshold_fraction`` of the base size (mirroring the paper's
    100 KB / 10 MB thresholds).
    """

    num_forks: int = 100
    upstream_length: int = 20
    base_size: float = 50_000.0
    size_spread: float = 0.05
    divergence_fraction: float = 0.02
    divergence_spread: float = 1.0
    pair_threshold_fraction: float = 0.1
    recreation_multiplier: float = 2.0
    directed: bool = True
    seed: int = 0


@dataclass
class ForkDataset:
    """The simulated fork collection: a version graph plus its cost model."""

    graph: VersionGraph
    cost_model: CostModel
    upstream_points: dict[VersionID, int]


def generate_fork_dataset(config: ForkDatasetConfig | None = None) -> ForkDataset:
    """Generate a BF/LF-style fork collection.

    Every fork is a version whose "distance" from upstream commit ``k`` is
    modeled explicitly; the delta between two forks grows with how far apart
    their upstream branch points are plus their individual divergence, and
    is clamped to never exceed materializing the target.  Pairs whose sizes
    differ by more than the threshold are not revealed, exactly like the
    paper's preprocessing.
    """
    config = config or ForkDatasetConfig()
    rng = random.Random(config.seed)
    graph = VersionGraph()

    sizes: dict[VersionID, float] = {}
    divergence: dict[VersionID, float] = {}
    upstream_points: dict[VersionID, int] = {}

    for index in range(config.num_forks):
        vid = f"fork{index}"
        branch_point = rng.randint(0, config.upstream_length - 1)
        size = config.base_size * rng.uniform(1 - config.size_spread, 1 + config.size_spread)
        local_divergence = (
            config.base_size
            * config.divergence_fraction
            * rng.uniform(0.1, 1 + config.divergence_spread)
        )
        graph.add_version(Version(version_id=vid, size=size, name=vid, created_at=index))
        sizes[vid] = size
        divergence[vid] = local_divergence
        upstream_points[vid] = branch_point

    model = CostModel(directed=config.directed, phi_equals_delta=False)
    for vid, size in sizes.items():
        model.set_materialization(vid, size, size)

    threshold = config.base_size * config.pair_threshold_fraction
    fork_ids = list(sizes)
    upstream_gap_unit = config.base_size * config.divergence_fraction
    for i, source in enumerate(fork_ids):
        for target in fork_ids[i + 1:]:
            if abs(sizes[source] - sizes[target]) > threshold:
                continue
            gap = abs(upstream_points[source] - upstream_points[target])
            estimated = (
                divergence[source]
                + divergence[target]
                + gap * upstream_gap_unit * rng.uniform(0.5, 1.5)
            )
            forward = min(estimated, sizes[target])
            backward = min(estimated * rng.uniform(0.9, 1.1), sizes[source])
            model.set_delta(
                source, target, forward, forward * config.recreation_multiplier
            )
            model.set_delta(
                target, source, backward, backward * config.recreation_multiplier
            )
    return ForkDataset(graph=graph, cost_model=model, upstream_points=upstream_points)
