"""Synthetic dataset, cost and workload generators.

Everything the paper's evaluation needs as input is generated here:

* :mod:`~repro.datagen.graph_gen` — branching/merging version histories;
* :mod:`~repro.datagen.table_gen` — tabular payloads produced by the edit
  command language;
* :mod:`~repro.datagen.cost_gen` — Δ/Φ matrices, either measured from real
  deltas or drawn synthetically with a k-hop reveal policy;
* :mod:`~repro.datagen.forks_gen` — simulated GitHub-fork collections;
* :mod:`~repro.datagen.workload` — Zipfian and other access-frequency
  workloads;
* :mod:`~repro.datagen.scenarios` — the four canonical DC/LC/BF/LF datasets.
"""

from . import scenarios
from .cost_gen import SyntheticCostConfig, costs_from_tables, reveal_pairs, synthetic_costs
from .forks_gen import ForkDataset, ForkDatasetConfig, generate_fork_dataset
from .graph_gen import (
    VersionGraphConfig,
    flat_history_graph,
    generate_version_graph,
    linear_chain_graph,
)
from .scenarios import (
    ScenarioDataset,
    all_scenarios,
    bootstrap_forks,
    densely_connected,
    linear_chain,
    linux_forks,
)
from .table_gen import TableDataset, TableDatasetConfig, generate_tables, table_sizes
from .workload import (
    normalize_workload,
    recency_workload,
    sample_accesses,
    uniform_workload,
    zipfian_workload,
)

__all__ = [
    "scenarios",
    "SyntheticCostConfig",
    "costs_from_tables",
    "reveal_pairs",
    "synthetic_costs",
    "ForkDataset",
    "ForkDatasetConfig",
    "generate_fork_dataset",
    "VersionGraphConfig",
    "flat_history_graph",
    "generate_version_graph",
    "linear_chain_graph",
    "ScenarioDataset",
    "all_scenarios",
    "bootstrap_forks",
    "densely_connected",
    "linear_chain",
    "linux_forks",
    "TableDataset",
    "TableDatasetConfig",
    "generate_tables",
    "table_sizes",
    "normalize_workload",
    "recency_workload",
    "sample_accesses",
    "uniform_workload",
    "zipfian_workload",
]
