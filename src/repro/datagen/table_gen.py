"""Tabular payload generator driven by the paper's edit-command language.

The paper's synthetic suite, after generating a version graph, "generate[s]
the appropriate versions and compute[s] the deltas": each edge of the
version graph is annotated with edit commands (add/delete consecutive rows,
add/remove a column, modify rows/columns) that produce the child version's
table from the parent's.  This module does the same thing on laptop-scale
tables, so the resulting instances have *real* payloads whose deltas can be
computed by any encoder in :mod:`repro.delta`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Mapping

from ..core.version import VersionID
from ..core.version_graph import VersionGraph
from ..delta.command_delta import EditCommand, apply_commands

__all__ = ["TableDatasetConfig", "TableDataset", "generate_tables"]

Table = list[list[str]]


@dataclass(frozen=True)
class TableDatasetConfig:
    """Parameters controlling payload generation.

    ``command_kinds`` restricts which of the paper's six edit commands the
    generator may draw; row-only workloads (``add_rows``, ``delete_rows``,
    ``modify_rows``) produce the small line-based deltas typical of the
    paper's CSV experiments, while column operations rewrite every line and
    stress the cell-level encoder instead.
    """

    base_rows: int = 200
    base_columns: int = 6
    max_edit_commands: int = 4
    max_rows_per_edit: int = 20
    cell_width: int = 8
    command_kinds: tuple[str, ...] = (
        "add_rows",
        "delete_rows",
        "add_column",
        "remove_column",
        "modify_rows",
        "modify_column",
    )
    seed: int = 0


@dataclass
class TableDataset:
    """The generated payloads plus the edit commands used on every edge."""

    graph: VersionGraph
    tables: dict[VersionID, Table]
    edge_commands: dict[tuple[VersionID, VersionID], tuple[EditCommand, ...]] = field(
        default_factory=dict
    )

    def table(self, version_id: VersionID) -> Table:
        """Payload of ``version_id``."""
        return self.tables[version_id]

    def as_text(self, version_id: VersionID) -> list[str]:
        """CSV-style line rendering of a version (for line-diff encoders)."""
        return [",".join(row) for row in self.tables[version_id]]


def _random_cell(rng: random.Random, width: int) -> str:
    return "".join(rng.choice("abcdefghijklmnopqrstuvwxyz0123456789") for _ in range(width))


def _random_row(rng: random.Random, columns: int, width: int) -> list[str]:
    return [_random_cell(rng, width) for _ in range(columns)]


def _random_commands(
    rng: random.Random, table: Table, config: TableDatasetConfig
) -> tuple[EditCommand, ...]:
    """Draw a random edit script against ``table``."""
    num_rows = len(table)
    num_columns = len(table[0]) if num_rows else config.base_columns
    commands: list[EditCommand] = []
    for _ in range(rng.randint(1, config.max_edit_commands)):
        kind = rng.choice(list(config.command_kinds))
        if kind == "add_rows":
            count = rng.randint(1, config.max_rows_per_edit)
            rows = tuple(
                tuple(_random_row(rng, num_columns, config.cell_width)) for _ in range(count)
            )
            commands.append(
                EditCommand(kind=kind, position=rng.randint(0, num_rows), payload=rows)
            )
            num_rows += count
        elif kind == "delete_rows":
            if num_rows <= config.max_rows_per_edit:
                continue
            count = rng.randint(1, config.max_rows_per_edit)
            position = rng.randint(0, max(0, num_rows - count))
            commands.append(EditCommand(kind=kind, position=position, count=count))
            num_rows -= count
        elif kind == "add_column":
            values = tuple(_random_cell(rng, config.cell_width) for _ in range(5))
            commands.append(EditCommand(kind=kind, payload=values))
            num_columns += 1
        elif kind == "remove_column":
            if num_columns <= 2:
                continue
            commands.append(EditCommand(kind=kind, column=rng.randint(0, num_columns - 1)))
            num_columns -= 1
        elif kind == "modify_rows":
            count = rng.randint(1, config.max_rows_per_edit)
            position = rng.randint(0, max(0, num_rows - 1))
            commands.append(
                EditCommand(
                    kind=kind,
                    position=position,
                    count=count,
                    payload=(_random_cell(rng, config.cell_width),),
                )
            )
        else:  # modify_column
            count = rng.randint(1, config.max_rows_per_edit)
            position = rng.randint(0, max(0, num_rows - 1))
            commands.append(
                EditCommand(
                    kind=kind,
                    position=position,
                    count=count,
                    column=rng.randint(0, max(0, num_columns - 1)),
                    payload=(_random_cell(rng, config.cell_width),),
                )
            )
    return tuple(commands)


def generate_tables(
    graph: VersionGraph, config: TableDatasetConfig | None = None
) -> TableDataset:
    """Generate a table payload for every version of ``graph``.

    Root versions get a fresh random table of ``base_rows × base_columns``
    cells; every derived version applies a random edit script to its first
    parent's table (merge versions additionally splice a block of rows from
    their second parent, so merges genuinely combine content from both
    sides).
    """
    config = config or TableDatasetConfig()
    rng = random.Random(config.seed)
    tables: dict[VersionID, Table] = {}
    edge_commands: dict[tuple[VersionID, VersionID], tuple[EditCommand, ...]] = {}

    for vid in graph.topological_order():
        version = graph.version(vid)
        if version.is_root:
            tables[vid] = [
                _random_row(rng, config.base_columns, config.cell_width)
                for _ in range(config.base_rows)
            ]
            continue
        primary = version.parents[0]
        commands = _random_commands(rng, tables[primary], config)
        table = apply_commands(tables[primary], commands)
        edge_commands[(primary, vid)] = commands
        if version.is_merge:
            # Splice a block of rows from the secondary parent.
            secondary = version.parents[1]
            other = tables[secondary]
            if other:
                take = max(1, len(other) // 10)
                start = rng.randint(0, max(0, len(other) - take))
                block = [list(row) for row in other[start: start + take]]
                merge_command = EditCommand(
                    kind="add_rows",
                    position=min(len(table), start),
                    payload=tuple(tuple(row) for row in block),
                )
                table = apply_commands(table, (merge_command,))
                edge_commands[(secondary, vid)] = (merge_command,)
        tables[vid] = table

    return TableDataset(graph=graph, tables=tables, edge_commands=edge_commands)


def table_sizes(dataset: TableDataset) -> Mapping[VersionID, float]:
    """Textual size of every version's table (used as materialization cost)."""
    return {
        vid: float(sum(len(cell) + 1 for row in table for cell in row))
        for vid, table in dataset.tables.items()
    }
