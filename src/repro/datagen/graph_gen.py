"""Synthetic version-graph generator.

Reimplements the paper's "synthetic version generator suite" (Section 5.1),
which produces a version history DAG controlled by a small set of
parameters:

* ``num_commits`` — total number of versions;
* ``branch_interval`` / ``branch_probability`` — after how many consecutive
  commits a branch point may occur, and with what probability;
* ``branch_limit`` — the maximum number of branches created at a branch
  point (the actual number is uniform in ``[1, branch_limit]``);
* ``branch_length`` — the maximum number of commits in a branch (the actual
  length is uniform in ``[1, branch_length]``);
* ``merge_probability`` — probability that a finished branch is merged back
  into the mainline (producing versions with two parents, as DataHub
  permits).

The generator only creates the *structure*; sizes and costs are attached by
:mod:`repro.datagen.table_gen` (real payloads) or
:mod:`repro.datagen.cost_gen` (synthetic costs).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..core.version import Version
from ..core.version_graph import VersionGraph

__all__ = ["VersionGraphConfig", "generate_version_graph", "linear_chain_graph", "flat_history_graph"]


@dataclass(frozen=True)
class VersionGraphConfig:
    """Parameters of the synthetic version-history generator."""

    num_commits: int = 100
    branch_interval: int = 5
    branch_probability: float = 0.3
    branch_limit: int = 3
    branch_length: int = 10
    merge_probability: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_commits < 1:
            raise ValueError("num_commits must be at least 1")
        if self.branch_interval < 1:
            raise ValueError("branch_interval must be at least 1")
        if not 0.0 <= self.branch_probability <= 1.0:
            raise ValueError("branch_probability must be in [0, 1]")
        if self.branch_limit < 1:
            raise ValueError("branch_limit must be at least 1")
        if self.branch_length < 1:
            raise ValueError("branch_length must be at least 1")
        if not 0.0 <= self.merge_probability <= 1.0:
            raise ValueError("merge_probability must be in [0, 1]")


def generate_version_graph(config: VersionGraphConfig) -> VersionGraph:
    """Generate a branching/merging version history.

    The generator walks a mainline of commits; every ``branch_interval``
    commits it flips a coin (``branch_probability``) and, on success, forks
    up to ``branch_limit`` branches of random length off the current mainline
    head.  Each finished branch is merged back with probability
    ``merge_probability``.  Version ids are ``"v0"``, ``"v1"``, ... in
    creation order; sizes are left at zero (to be filled by the payload or
    cost generators).
    """
    rng = random.Random(config.seed)
    graph = VersionGraph()
    counter = 0

    def next_id() -> str:
        nonlocal counter
        vid = f"v{counter}"
        counter += 1
        return vid

    mainline_head = next_id()
    graph.add_version(Version(version_id=mainline_head, name="main", created_at=0))

    since_branch = 0
    while counter < config.num_commits:
        # Possibly start branches off the current mainline head.
        if (
            since_branch >= config.branch_interval
            and rng.random() < config.branch_probability
            and counter < config.num_commits
        ):
            since_branch = 0
            num_branches = rng.randint(1, config.branch_limit)
            for branch_index in range(num_branches):
                if counter >= config.num_commits:
                    break
                branch_head = mainline_head
                length = rng.randint(1, config.branch_length)
                branch_name = f"branch-{mainline_head}-{branch_index}"
                for _ in range(length):
                    if counter >= config.num_commits:
                        break
                    vid = next_id()
                    graph.add_version(
                        Version(
                            version_id=vid,
                            name=branch_name,
                            parents=(branch_head,),
                            created_at=counter,
                        )
                    )
                    branch_head = vid
                # Merge the branch back into the mainline sometimes.
                if (
                    branch_head != mainline_head
                    and counter < config.num_commits
                    and rng.random() < config.merge_probability
                ):
                    vid = next_id()
                    graph.add_version(
                        Version(
                            version_id=vid,
                            name="merge",
                            parents=(mainline_head, branch_head),
                            created_at=counter,
                        )
                    )
                    mainline_head = vid
            continue
        # Plain mainline commit.
        vid = next_id()
        graph.add_version(
            Version(
                version_id=vid,
                name="main",
                parents=(mainline_head,),
                created_at=counter,
            )
        )
        mainline_head = vid
        since_branch += 1
    return graph


def linear_chain_graph(num_commits: int, seed: int = 0) -> VersionGraph:
    """A "mostly linear" history: few branches, long intervals (LC shape)."""
    config = VersionGraphConfig(
        num_commits=num_commits,
        branch_interval=max(2, num_commits // 10),
        branch_probability=0.2,
        branch_limit=1,
        branch_length=max(2, num_commits // 20),
        merge_probability=0.3,
        seed=seed,
    )
    return generate_version_graph(config)


def flat_history_graph(num_commits: int, seed: int = 0) -> VersionGraph:
    """A "flat" history: many frequent short branches (DC shape)."""
    config = VersionGraphConfig(
        num_commits=num_commits,
        branch_interval=2,
        branch_probability=0.7,
        branch_limit=4,
        branch_length=3,
        merge_probability=0.5,
        seed=seed,
    )
    return generate_version_graph(config)
