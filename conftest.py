"""Pytest bootstrap.

Ensures the in-tree ``src/`` layout is importable even when the package has
not been pip-installed (useful on fully offline environments where editable
installs are unavailable because the ``wheel`` package is missing).
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
