"""Setup shim.

The project is fully described by ``pyproject.toml``; this file exists so
that ``pip install -e .`` keeps working on minimal offline environments
where the ``wheel`` package (needed for PEP 660 editable wheels) is not
available and pip falls back to the legacy ``setup.py develop`` path.
"""

from setuptools import setup

setup()
